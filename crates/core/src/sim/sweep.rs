//! Monte-Carlo sweeps over seeded topologies.
//!
//! [`SweepSpec`] is the one batch entry point: it draws one topology per
//! seed, shares one channel-cached [`SimEngine`] per topology across all
//! requested policies, and aggregates mean/CI statistics — serially or
//! on the scoped-thread executor with **bit-for-bit identical** results
//! at every thread count. [`sweep()`] and [`sweep_parallel`] remain as
//! protocol-enum wrappers for backward compatibility.
//!
//! [`CanonicalSpec`] is the spec's content-addressable identity: a
//! normalized (scenario, environment, policies, seeds, rounds) record
//! whose [`key`](CanonicalSpec::key) the `sweep-server`'s result cache
//! is addressed by. [`SweepError`] is the typed error surface every
//! served entry point funnels malformed input through — no reachable
//! panic from a bad spec.

use super::{
    Flow, MobilityModel, Protocol, RunResult, Scenario, SimConfig, SimEngine, SinrGrid,
    TrafficModel,
};
use crate::observer::{RoundObserver, RunIdentity};
use crate::policy::{policy_from_name, MacPolicy, BUILTIN_POLICY_NAMES};
use nplus_channel::environment::{
    environment_from_name, ChannelEnvironment, EnvironmentError, BUILTIN_ENVIRONMENT_NAMES,
    SIGCOMM11_INDOOR,
};
use nplus_channel::placement::Testbed;
use nplus_medium::topology::build_environment_topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Aggregated statistics of one policy across a seed sweep.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Name of the policy these statistics describe (see
    /// [`MacPolicy::name`]; the enum-era protocols report `"nplus"`,
    /// `"dot11n"`, `"beamforming"`).
    pub policy: String,
    /// Number of seeded topologies simulated.
    pub n_runs: usize,
    /// Mean total network goodput, Mb/s.
    pub mean_total_mbps: f64,
    /// Half-width of the 95% confidence interval on the mean total
    /// goodput (Student-t critical value below 30 runs, a continuous
    /// expansion converging to z = 1.96 above; 0 for fewer than two
    /// runs).
    pub ci95_total_mbps: f64,
    /// Mean goodput per flow, Mb/s.
    pub mean_per_flow_mbps: Vec<f64>,
    /// Mean degrees of freedom in use during data transfer.
    pub mean_dof: f64,
    /// Mean Jain's fairness index over the runs where fairness is
    /// defined (see [`RunResult::jain_fairness`]: empty flow lists and
    /// all-zero goodput are excluded as undefined); `NaN` when no run
    /// had defined fairness.
    pub mean_fairness: f64,
}

/// The typed error surface of the sweep entry points.
///
/// Every way a spec can be malformed — a structurally invalid scenario,
/// a name the registries don't know, a scenario that outsizes its
/// environment's maps, a spec that cannot be content-addressed — is one
/// of these variants. Nothing on the [`SweepSpec::try_run`] /
/// [`CanonicalSpec`] path panics on bad input: front-ends map this type
/// to a one-line exit-2 (CLI) or an error response (`sweep-server`).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The scenario needs more placement slots than the environment's
    /// maps (or an explicit testbed override) offer.
    Environment(EnvironmentError),
    /// A policy name the registry does not know.
    UnknownPolicy(String),
    /// An environment name the registry does not know.
    UnknownEnvironment(String),
    /// A structurally invalid spec: bad flow indices, zero antennas,
    /// an empty seed list, zero rounds — see [`Scenario::validate`].
    InvalidSpec(String),
    /// The spec cannot be canonicalized for content-addressing (custom
    /// non-registry parts, a testbed override, or config fields beyond
    /// the canonical surface) — see [`SweepSpec::canonical`].
    NotCanonical(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Environment(e) => e.fmt(f),
            SweepError::UnknownPolicy(name) => {
                write!(f, "unknown policy {name:?} (try {BUILTIN_POLICY_NAMES:?})")
            }
            SweepError::UnknownEnvironment(name) => write!(
                f,
                "unknown environment {name:?} (try {BUILTIN_ENVIRONMENT_NAMES:?})"
            ),
            SweepError::InvalidSpec(msg) => write!(f, "invalid spec: {msg}"),
            SweepError::NotCanonical(msg) => write!(f, "spec is not canonicalizable: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Environment(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnvironmentError> for SweepError {
    fn from(e: EnvironmentError) -> Self {
        SweepError::Environment(e)
    }
}

/// The canonical, content-addressable form of a sweep request: the
/// exact fields that determine a sweep's results, normalized so that
/// equivalent requests — however their builders were called, whatever
/// thread count they run at — encode to identical bytes and hash to the
/// same [`key`](CanonicalSpec::key).
///
/// This is the cache contract of the `sweep-server`: a result computed
/// once for a key may be returned for every later request with that key,
/// because
///
/// * the sweep engine is a pure function of (scenario, environment,
///   policies, seeds, rounds) — proven bit-for-bit across thread counts
///   by the `sweep_parallel` suites — and
/// * two specs with equal canonical bytes run exactly that function on
///   exactly those inputs.
///
/// **What is canonical:** the scenario's antenna/flow lists, the
/// environment's registry name, the policy names in comparison order
/// (order matters: it is the order of the returned [`SweepStats`]), the
/// seed list in order (seeds are positional jobs), the round count, and
/// the traffic/mobility models (both result-determining: they change
/// what the run RNG feeds). An empty policy list normalizes to the
/// default comparison trio, so "no policies named" and "the default
/// trio named explicitly" share a key.
///
/// **What is deliberately not:** the thread count (results are
/// bit-identical at every value) and the channel-cache toggle (same).
/// Everything else in [`SimConfig`] must sit at the environment's
/// defaults — [`SweepSpec::canonical`] refuses otherwise rather than
/// hash fields it does not encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalSpec {
    /// Antenna count per node.
    pub antennas: Vec<usize>,
    /// Flow endpoints `(tx, rx)` as node indices.
    pub flows: Vec<(usize, usize)>,
    /// Registry name of the propagation environment.
    pub environment: String,
    /// Registry names of the policies, in comparison order (never
    /// empty: defaults are normalized in).
    pub policies: Vec<String>,
    /// Seed list, in job order.
    pub seeds: Vec<u64>,
    /// Rounds per run.
    pub rounds: usize,
    /// Per-flow offered load (defaults to the paper's saturated
    /// assumption in [`CanonicalSpec::new`]).
    pub traffic: TrafficModel,
    /// Node mobility (defaults to static).
    pub mobility: MobilityModel,
    /// SINR evaluation tier (defaults to the exact full grid). A
    /// decimated tier is a different approximation, so it is part of
    /// the spec's identity — the result cache must never serve a
    /// decimated run for a full-grid request or vice versa.
    pub sinr_grid: SinrGrid,
}

/// Domain-separation prefix of the canonical byte encoding; bump the
/// version on any change to the encoding so old cache keys can never
/// alias new semantics. v2 added the traffic/mobility tags; v3 adds the
/// SINR-grid tier tag — every v2 key (implicitly full-grid) is
/// deliberately invalidated rather than aliased.
const CANONICAL_MAGIC: &[u8] = b"nplus-canonical-spec-v3\0";

/// 128-bit FNV-1a over `bytes` — dependency-free, stable across
/// platforms and releases (unlike `DefaultHasher`), and wide enough
/// that cache-key collisions are not a practical concern.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl CanonicalSpec {
    /// Builds and fully validates a canonical spec from request parts —
    /// the constructor the `sweep-server` protocol layer uses. An empty
    /// `policies` list normalizes to the default comparison trio.
    ///
    /// # Errors
    /// [`SweepError::InvalidSpec`] for structural problems (including an
    /// empty seed list and zero rounds),
    /// [`SweepError::UnknownPolicy`] / [`UnknownEnvironment`](
    /// SweepError::UnknownEnvironment) for names outside the registries.
    pub fn new(
        scenario: &Scenario,
        environment: &str,
        policies: &[String],
        seeds: Vec<u64>,
        rounds: usize,
    ) -> Result<Self, SweepError> {
        scenario.validate().map_err(SweepError::InvalidSpec)?;
        if environment_from_name(environment).is_none() {
            return Err(SweepError::UnknownEnvironment(environment.to_string()));
        }
        let policies: Vec<String> = if policies.is_empty() {
            DEFAULT_POLICIES
                .iter()
                .map(|p| p.name().to_string())
                .collect()
        } else {
            for name in policies {
                if policy_from_name(name).is_none() {
                    return Err(SweepError::UnknownPolicy(name.clone()));
                }
            }
            policies.to_vec()
        };
        if seeds.is_empty() {
            return Err(SweepError::InvalidSpec("empty seed list".to_string()));
        }
        if rounds == 0 {
            return Err(SweepError::InvalidSpec("zero rounds".to_string()));
        }
        Ok(CanonicalSpec {
            antennas: scenario.antennas.clone(),
            flows: scenario.flows.iter().map(|f| (f.tx, f.rx)).collect(),
            environment: environment.to_string(),
            policies,
            seeds,
            rounds,
            traffic: TrafficModel::Saturated,
            mobility: MobilityModel::Static,
            sinr_grid: SinrGrid::Full,
        })
    }

    /// Replaces the offered-load model (validated — invalid parameters
    /// must not become cache keys).
    ///
    /// # Errors
    /// [`SweepError::InvalidSpec`] with the model's own description.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Result<Self, SweepError> {
        traffic.validate().map_err(SweepError::InvalidSpec)?;
        self.traffic = traffic;
        Ok(self)
    }

    /// Replaces the mobility model (validated, as
    /// [`with_traffic`](CanonicalSpec::with_traffic)).
    ///
    /// # Errors
    /// [`SweepError::InvalidSpec`] with the model's own description.
    pub fn with_mobility(mut self, mobility: MobilityModel) -> Result<Self, SweepError> {
        mobility.validate().map_err(SweepError::InvalidSpec)?;
        self.mobility = mobility;
        Ok(self)
    }

    /// Replaces the SINR evaluation tier (validated, as
    /// [`with_traffic`](CanonicalSpec::with_traffic)).
    ///
    /// # Errors
    /// [`SweepError::InvalidSpec`] with the tier's own description.
    pub fn with_sinr_grid(mut self, sinr_grid: SinrGrid) -> Result<Self, SweepError> {
        sinr_grid.validate().map_err(SweepError::InvalidSpec)?;
        self.sinr_grid = sinr_grid;
        Ok(self)
    }

    /// The unambiguous byte encoding the [`key`](CanonicalSpec::key) is
    /// hashed over: a version magic, then every field tagged and
    /// length-prefixed (all integers little-endian u64), so no two
    /// distinct specs can encode to the same bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_str(out: &mut Vec<u8>, s: &str) {
            put_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(CANONICAL_MAGIC);
        out.push(0x01);
        put_u64(&mut out, self.antennas.len() as u64);
        for &a in &self.antennas {
            put_u64(&mut out, a as u64);
        }
        out.push(0x02);
        put_u64(&mut out, self.flows.len() as u64);
        for &(tx, rx) in &self.flows {
            put_u64(&mut out, tx as u64);
            put_u64(&mut out, rx as u64);
        }
        out.push(0x03);
        put_str(&mut out, &self.environment);
        out.push(0x04);
        put_u64(&mut out, self.policies.len() as u64);
        for p in &self.policies {
            put_str(&mut out, p);
        }
        out.push(0x05);
        put_u64(&mut out, self.seeds.len() as u64);
        for &s in &self.seeds {
            put_u64(&mut out, s);
        }
        out.push(0x06);
        put_u64(&mut out, self.rounds as u64);
        // Model parameters are hashed as IEEE-754 bit patterns: the
        // validated domain excludes NaN/inf, so bit equality is exactly
        // value equality and keys stay platform-stable.
        out.push(0x07);
        match self.traffic {
            TrafficModel::Saturated => put_u64(&mut out, 0),
            TrafficModel::Poisson { mean_per_round } => {
                put_u64(&mut out, 1);
                put_u64(&mut out, mean_per_round.to_bits());
            }
            TrafficModel::Bursty {
                mean_on_rounds,
                mean_off_rounds,
            } => {
                put_u64(&mut out, 2);
                put_u64(&mut out, mean_on_rounds.to_bits());
                put_u64(&mut out, mean_off_rounds.to_bits());
            }
        }
        out.push(0x08);
        match self.mobility {
            MobilityModel::Static => put_u64(&mut out, 0),
            MobilityModel::Waypoint {
                step_m,
                epoch_rounds,
            } => {
                put_u64(&mut out, 1);
                put_u64(&mut out, step_m.to_bits());
                put_u64(&mut out, epoch_rounds as u64);
            }
        }
        out.push(0x09);
        match self.sinr_grid {
            SinrGrid::Full => put_u64(&mut out, 0),
            SinrGrid::Decimated(k) => {
                put_u64(&mut out, 1);
                put_u64(&mut out, k as u64);
            }
        }
        out
    }

    /// The 128-bit content key: FNV-1a over
    /// [`canonical_bytes`](CanonicalSpec::canonical_bytes). Equal specs
    /// — including across builder-call orders and thread counts — get
    /// equal keys; any change to scenario, environment, policy set,
    /// seeds or rounds changes the key.
    pub fn key(&self) -> u128 {
        fnv1a_128(&self.canonical_bytes())
    }

    /// The key as 32 lower-case hex characters — what the wire protocol
    /// and logs print.
    pub fn key_hex(&self) -> String {
        format!("{:032x}", self.key())
    }

    /// Reconstructs the runnable [`SweepSpec`] this canonical form
    /// names, at an arbitrary thread count (execution detail, not
    /// identity: results are bit-identical for every value).
    ///
    /// # Errors
    /// As [`CanonicalSpec::new`] — the fields are public, so they are
    /// re-validated rather than trusted.
    pub fn to_spec(&self, threads: usize) -> Result<SweepSpec, SweepError> {
        let scenario = Scenario {
            antennas: self.antennas.clone(),
            flows: self.flows.iter().map(|&(tx, rx)| Flow { tx, rx }).collect(),
        };
        scenario.validate().map_err(SweepError::InvalidSpec)?;
        if self.seeds.is_empty() {
            return Err(SweepError::InvalidSpec("empty seed list".to_string()));
        }
        if self.rounds == 0 {
            return Err(SweepError::InvalidSpec("zero rounds".to_string()));
        }
        self.traffic.validate().map_err(SweepError::InvalidSpec)?;
        self.mobility.validate().map_err(SweepError::InvalidSpec)?;
        self.sinr_grid.validate().map_err(SweepError::InvalidSpec)?;
        let mut spec = SweepSpec::new(scenario)
            .environment_named(&self.environment)
            .map_err(SweepError::UnknownEnvironment)?
            .rounds(self.rounds)
            .traffic(self.traffic)
            .mobility(self.mobility)
            .sinr_grid(self.sinr_grid)
            .seeds(self.seeds.iter().copied())
            .threads(threads);
        for name in &self.policies {
            spec = spec.policy_named(name).map_err(SweepError::UnknownPolicy)?;
        }
        Ok(spec)
    }
}

/// Two-sided 95% Student-t critical values indexed by `df - 1` for
/// `df = 1..=28` (sample sizes 2..=29). Larger sample sizes use the
/// first-order expansion `z + (z³ + z)/(4·df)`, which is within 0.2%
/// of the exact t value at df = 29 and converges to z = 1.96 — no
/// discontinuous CI narrowing at the table boundary.
const T_CRIT_95: [f64; 28] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048,
];

/// Half-width of the 95% confidence interval on the mean of `samples`.
///
/// Small seed counts are the common case in quick sweeps, where the
/// normal approximation's z = 1.96 understates the interval badly (the
/// correct critical value at n = 5 is 2.776, at n = 2 it is 12.706);
/// this uses the Student-t value for n < 30 and z above.
fn ci95_half_width(samples: &[f64], mean: f64) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let crit = if n < 30 {
        T_CRIT_95[n - 2]
    } else {
        // Cornish-Fisher first-order tail expansion of t around z.
        let z = 1.96f64;
        let df = (n - 1) as f64;
        z + (z.powi(3) + z) / (4.0 * df)
    };
    crit * (var / n as f64).sqrt()
}

/// One seed-indexed unit of Monte-Carlo sweep work: draw the topology
/// for `seed`, build one channel-cached [`SimEngine`], and run every
/// policy against it.
///
/// The RNG derivations are the sweep's determinism contract: the
/// placement stream is seeded by the seed itself, and each policy's
/// run stream by `seed ^ 0x5EED_CAFE` — both fixed functions of the
/// job's seed alone, never of execution order. That is what lets
/// [`sweep_parallel`] run jobs on any number of threads and still merge
/// results bit-for-bit identical to the serial [`sweep()`].
pub struct SweepJob<'a> {
    environment: &'a dyn ChannelEnvironment,
    testbed: &'a Testbed,
    scenario: &'a Scenario,
    cfg: &'a SimConfig,
    policies: &'a [&'a dyn MacPolicy],
    /// The topology/run seed this job covers.
    pub seed: u64,
}

/// The per-seed output of one [`SweepJob`]: one [`RunResult`] per
/// requested policy, in policy order.
#[derive(Debug, Clone)]
pub struct SeedResults {
    /// The seed that produced these results.
    pub seed: u64,
    /// One result per policy, in the order the job was given.
    pub per_policy: Vec<RunResult>,
}

impl<'a> SweepJob<'a> {
    /// Builds the job for one seed of a sweep in the paper's default
    /// indoor world ([`SIGCOMM11_INDOOR`]).
    pub fn new(
        testbed: &'a Testbed,
        scenario: &'a Scenario,
        cfg: &'a SimConfig,
        policies: &'a [&'a dyn MacPolicy],
        seed: u64,
    ) -> Self {
        Self::in_environment(&SIGCOMM11_INDOOR, testbed, scenario, cfg, policies, seed)
    }

    /// Builds the job for one seed of a sweep in an arbitrary
    /// propagation environment.
    ///
    /// The environment's hooks drive only the *topology* draw — the
    /// engine reads the hardware profile and §4 threshold `L` from
    /// `cfg`, so callers must mirror
    /// [`ChannelEnvironment::hardware`]/[`join_power_l_db`](
    /// ChannelEnvironment::join_power_l_db) into `cfg` themselves (as
    /// [`SweepSpec::environment`] does); a default `cfg` silently runs
    /// any world on the paper's pristine radios.
    pub fn in_environment(
        environment: &'a dyn ChannelEnvironment,
        testbed: &'a Testbed,
        scenario: &'a Scenario,
        cfg: &'a SimConfig,
        policies: &'a [&'a dyn MacPolicy],
        seed: u64,
    ) -> Self {
        SweepJob {
            environment,
            testbed,
            scenario,
            cfg,
            policies,
            seed,
        }
    }

    /// Runs the job: topology draw, engine construction, one simulation
    /// per policy. Pure in the seed — no shared mutable state. Panics
    /// when the testbed is too small for the scenario (`SweepSpec`
    /// validates capacity before any job is spawned, so the panic is
    /// unreachable through the builder).
    pub fn run(&self) -> SeedResults {
        let mut placement_rng = StdRng::seed_from_u64(self.seed);
        let topo = build_environment_topology(
            self.environment,
            self.testbed,
            &self.scenario.antennas,
            self.cfg.ofdm.bandwidth_hz,
            self.seed,
            &mut placement_rng,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let engine = SimEngine::new(&topo, self.scenario, self.cfg);
        let per_policy = self
            .policies
            .iter()
            .map(|&policy| {
                let mut run_rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_CAFE);
                engine.run_policy(policy, &mut run_rng)
            })
            .collect();
        SeedResults {
            seed: self.seed,
            per_policy,
        }
    }

    /// [`run`](SweepJob::run) with one caller observer per policy:
    /// `observers[i]` receives the full event stream of policy `i`'s
    /// run, labeled (via [`RunMeta::identity`](
    /// crate::observer::RunMeta)) with a [`RunIdentity`] carrying the
    /// job's seed, the environment's registry name, and the sweep's
    /// canonical key when the caller knows one. Observers only listen:
    /// the returned results are bit-for-bit those of
    /// [`run`](SweepJob::run).
    ///
    /// # Panics
    /// When `observers.len() != policies.len()`, and — like
    /// [`run`](SweepJob::run) — when the testbed cannot fit the
    /// scenario.
    pub fn run_observed(
        &self,
        canonical_key: Option<u128>,
        observers: &mut [&mut dyn RoundObserver],
    ) -> SeedResults {
        assert_eq!(
            observers.len(),
            self.policies.len(),
            "one observer per policy"
        );
        let mut placement_rng = StdRng::seed_from_u64(self.seed);
        let topo = build_environment_topology(
            self.environment,
            self.testbed,
            &self.scenario.antennas,
            self.cfg.ofdm.bandwidth_hz,
            self.seed,
            &mut placement_rng,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let engine = SimEngine::new(&topo, self.scenario, self.cfg);
        let per_policy = self
            .policies
            .iter()
            .zip(observers.iter_mut())
            .map(|(&policy, observer)| {
                let mut run_rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_CAFE);
                let identity = RunIdentity {
                    seed: self.seed,
                    environment: self.environment.name().to_string(),
                    canonical_key,
                };
                engine.run_identified(policy, &mut run_rng, &mut **observer, Some(identity))
            })
            .collect();
        SeedResults {
            seed: self.seed,
            per_policy,
        }
    }
}

// `sweep_parallel` shares the scenario/config/testbed/policies across
// scoped worker threads and sends per-seed results back; all of it must
// be thread-safe by construction (`MacPolicy` has `Send + Sync`
// supertraits, and the medium-side types carry their own assertions
// next to their definitions).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Scenario>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Protocol>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<SeedResults>();
    assert_send_sync::<&dyn MacPolicy>();
};

/// Folds per-seed results (already in seed order) into per-policy
/// statistics — the exact aggregation [`SweepSpec::try_run`] applies,
/// public so offline consumers (the recording replay path above all)
/// can reproduce [`SweepStats`] bit-for-bit from per-run results alone.
///
/// The accumulation order is fixed — seed-major, policy within seed —
/// so the aggregate is a pure function of the ordered result list,
/// independent of how the jobs were scheduled. `n_flows` sizes the
/// per-flow means, `policy_names` must be in job policy order, and
/// every `results` entry must carry one result per policy.
pub fn aggregate_results(
    n_flows: usize,
    policy_names: &[String],
    results: &[SeedResults],
) -> Vec<SweepStats> {
    let mut totals: Vec<Vec<f64>> = vec![Vec::with_capacity(results.len()); policy_names.len()];
    let mut per_flow: Vec<Vec<f64>> = vec![vec![0.0; n_flows]; policy_names.len()];
    let mut dofs: Vec<f64> = vec![0.0; policy_names.len()];
    let mut fairness_sum: Vec<f64> = vec![0.0; policy_names.len()];
    let mut fairness_n: Vec<usize> = vec![0; policy_names.len()];

    for seed_results in results {
        for (p, r) in seed_results.per_policy.iter().enumerate() {
            totals[p].push(r.total_mbps);
            for (f, v) in r.per_flow_mbps.iter().enumerate() {
                per_flow[p][f] += v;
            }
            dofs[p] += r.mean_dof;
            let j = r.jain_fairness();
            if j.is_finite() {
                fairness_sum[p] += j;
                fairness_n[p] += 1;
            }
        }
    }

    let n = results.len().max(1) as f64;
    policy_names
        .iter()
        .enumerate()
        .map(|(p, policy)| {
            let mean = totals[p].iter().sum::<f64>() / n;
            SweepStats {
                policy: policy.clone(),
                n_runs: totals[p].len(),
                mean_total_mbps: mean,
                ci95_total_mbps: ci95_half_width(&totals[p], mean),
                mean_per_flow_mbps: per_flow[p].iter().map(|v| v / n).collect(),
                mean_dof: dofs[p] / n,
                mean_fairness: if fairness_n[p] > 0 {
                    fairness_sum[p] / fairness_n[p] as f64
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

/// [`aggregate_results`] with names resolved from live policy refs —
/// the internal shape the sweep paths use.
fn aggregate_sweep(
    scenario: &Scenario,
    policies: &[&dyn MacPolicy],
    results: &[SeedResults],
) -> Vec<SweepStats> {
    let names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    aggregate_results(scenario.flows.len(), &names, results)
}

/// The policy-level sweep core: one [`SweepJob`] per seed on up to
/// `threads` workers (`0` = available parallelism, `1` = serial),
/// merged in seed order.
fn sweep_policies(
    environment: &dyn ChannelEnvironment,
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    policies: &[&dyn MacPolicy],
    seeds: &[u64],
    threads: usize,
) -> Vec<SweepStats> {
    let results = crate::executor::run_indexed(seeds.len(), threads, |i| {
        SweepJob::in_environment(environment, testbed, scenario, cfg, policies, seeds[i]).run()
    });
    aggregate_sweep(scenario, policies, &results)
}

/// Runs `scenario` on one freshly drawn topology per seed and aggregates
/// mean/CI statistics per protocol.
///
/// Enum-era wrapper over the policy sweep — see [`SweepSpec`] for the
/// builder that also accepts non-enum policies. For each seed the
/// topology is drawn once (placement + fading, seeded by the seed
/// itself) and a single [`SimEngine`] — with its channel cache — is
/// shared by every protocol; the simulation RNG is decorrelated from
/// the placement stream. Use [`sweep_parallel`] for the multi-threaded
/// variant (bit-for-bit identical results).
pub fn sweep(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
) -> Vec<SweepStats> {
    sweep_parallel(testbed, scenario, cfg, protocols, seeds, 1)
}

/// [`sweep()`] on up to `threads` worker threads (`0` = available
/// parallelism).
///
/// Seeds become independent [`SweepJob`]s executed by
/// [`executor::run_indexed`](crate::executor::run_indexed): workers pull
/// jobs from an atomic cursor, every job derives its RNGs from its seed
/// exactly as the serial path does, and results are merged in seed order
/// — so the returned statistics are **bit-for-bit identical** for every
/// thread count (asserted by the protocol-invariant proptests and the
/// `perf_sweep` CI smoke run).
pub fn sweep_parallel(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
    threads: usize,
) -> Vec<SweepStats> {
    let policies: Vec<&dyn MacPolicy> = protocols.iter().map(|&p| p.policy()).collect();
    sweep_policies(
        &SIGCOMM11_INDOOR,
        testbed,
        scenario,
        cfg,
        &policies,
        seeds,
        threads,
    )
}

/// Builder facade over the whole simulation surface: scenario in,
/// statistics out. One entry point replaces the
/// `simulate`/`sweep`/`sweep_parallel` trio — a single seed *is* a
/// sweep of one — and it is the only place policies, seeds, testbed,
/// config and thread count meet.
///
/// ```
/// use nplus::prelude::*;
///
/// let stats = SweepSpec::new(Scenario::three_pairs())
///     .rounds(4)
///     .seed_count(3)
///     .protocols(&[Protocol::Dot11n, Protocol::NPlus])
///     .policy(Oracle)
///     .threads(2)
///     .run();
/// assert_eq!(stats.len(), 3);
/// assert_eq!(stats[2].policy, "oracle");
/// ```
///
/// Defaults: the environment is the paper's indoor world
/// ([`SIGCOMM11_INDOOR`] — other worlds via
/// [`environment`](SweepSpec::environment) /
/// [`environment_named`](SweepSpec::environment_named)), the testbed
/// map is the environment's smallest fitting map, the config is
/// [`SimConfig::default`], seeds are `0..20`, policies are the paper's
/// comparison set (802.11n, beamforming, n+), and execution is serial.
pub struct SweepSpec {
    scenario: Scenario,
    environment: EnvEntry,
    testbed: Option<Testbed>,
    cfg: SimConfig,
    policies: Vec<PolicyEntry>,
    seeds: Vec<u64>,
    threads: usize,
}

/// One policy in a [`SweepSpec`]: the built-ins are zero-sized statics
/// (no boxing), caller-supplied policies are owned.
enum PolicyEntry {
    Static(&'static dyn MacPolicy),
    Owned(Box<dyn MacPolicy>),
}

impl PolicyEntry {
    fn as_dyn(&self) -> &dyn MacPolicy {
        match self {
            PolicyEntry::Static(p) => *p,
            PolicyEntry::Owned(b) => b.as_ref(),
        }
    }
}

/// The spec's environment: the built-ins are statics (no boxing),
/// caller-supplied environments are owned — the same shape as
/// [`PolicyEntry`].
enum EnvEntry {
    Static(&'static dyn ChannelEnvironment),
    Owned(Box<dyn ChannelEnvironment>),
}

impl EnvEntry {
    fn as_dyn(&self) -> &dyn ChannelEnvironment {
        match self {
            EnvEntry::Static(e) => *e,
            EnvEntry::Owned(b) => b.as_ref(),
        }
    }
}

/// The default comparison set (the paper's head-to-head trio), applied
/// when a spec names no policies. Front-ends that want the same default
/// should leave the spec empty rather than re-listing these.
pub const DEFAULT_POLICIES: [&dyn MacPolicy; 3] = [
    &crate::policy::Dot11n,
    &crate::policy::Beamforming,
    &crate::policy::NPlus,
];

/// Mirrors the environment hooks the engine reads from the config —
/// the one place the `hardware`/`L` coupling lives, shared by by-value
/// and by-name environment selection.
fn apply_environment_config(cfg: &mut SimConfig, env: &dyn ChannelEnvironment) {
    cfg.hardware = env.hardware();
    cfg.l_db = env.join_power_l_db();
}

impl SweepSpec {
    /// Starts a spec for `scenario` with the documented defaults.
    pub fn new(scenario: Scenario) -> Self {
        SweepSpec {
            scenario,
            environment: EnvEntry::Static(&SIGCOMM11_INDOOR),
            testbed: None,
            cfg: SimConfig::default(),
            policies: Vec::new(),
            seeds: (0..20).collect(),
            threads: 1,
        }
    }

    /// Places topologies on `testbed` instead of the environment's
    /// auto-fitted map.
    pub fn testbed(mut self, testbed: Testbed) -> Self {
        self.testbed = Some(testbed);
        self
    }

    /// Runs the sweep in `environment` instead of the paper's indoor
    /// world: the placement map, loss law, delay profiles and
    /// oscillator draws all come from its hooks, and — like
    /// [`rounds`](SweepSpec::rounds) — the call updates the config in
    /// place with the environment's [`HardwareProfile`](
    /// nplus_channel::impairments::HardwareProfile) and §4 threshold
    /// `L` (a later [`config`](SweepSpec::config) call overrides both
    /// again).
    pub fn environment(mut self, environment: impl ChannelEnvironment + 'static) -> Self {
        apply_environment_config(&mut self.cfg, &environment);
        self.environment = EnvEntry::Owned(Box::new(environment));
        self
    }

    /// Selects a built-in environment by name, resolved through the one
    /// registry ([`environment_from_name`]; see
    /// [`BUILTIN_ENVIRONMENT_NAMES`](
    /// nplus_channel::environment::BUILTIN_ENVIRONMENT_NAMES)). Applies
    /// the environment's hardware profile and `L` exactly like
    /// [`environment`](SweepSpec::environment).
    ///
    /// # Errors
    /// Returns the unknown name back.
    pub fn environment_named(mut self, name: &str) -> Result<Self, String> {
        match environment_from_name(name) {
            Some(env) => {
                apply_environment_config(&mut self.cfg, env);
                self.environment = EnvEntry::Static(env);
                Ok(self)
            }
            None => Err(name.to_string()),
        }
    }

    /// Replaces the whole simulation config — including the hardware
    /// profile and `L` a prior [`environment`](SweepSpec::environment)
    /// call installed (last call wins). To combine a non-default
    /// environment with config tweaks, call `config` first (or use the
    /// single-field setters like [`rounds`](SweepSpec::rounds), which
    /// leave the environment's fields alone).
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets just the round count (the most common config tweak).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.cfg.rounds = rounds;
        self
    }

    /// Sets the per-flow offered-load model. Like
    /// [`rounds`](SweepSpec::rounds) this is a canonical field: a
    /// non-default model changes the sweep's content key rather than
    /// making the spec uncacheable.
    pub fn traffic(mut self, traffic: TrafficModel) -> Self {
        self.cfg.traffic = traffic;
        self
    }

    /// Sets the node mobility model (canonical, like
    /// [`traffic`](SweepSpec::traffic)).
    pub fn mobility(mut self, mobility: MobilityModel) -> Self {
        self.cfg.mobility = mobility;
        self
    }

    /// Sets the SINR evaluation tier (canonical, like
    /// [`traffic`](SweepSpec::traffic)): [`SinrGrid::Decimated`] trades
    /// a bounded goodput error for a large planning speed-up, and keys
    /// differently in the result cache than the exact full grid.
    pub fn sinr_grid(mut self, sinr_grid: SinrGrid) -> Self {
        self.cfg.sinr_grid = sinr_grid;
        self
    }

    /// Adds one policy to the comparison, in call order.
    pub fn policy(mut self, policy: impl MacPolicy + 'static) -> Self {
        self.policies.push(PolicyEntry::Owned(Box::new(policy)));
        self
    }

    /// Adds one enum-era protocol to the comparison.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.policies.push(PolicyEntry::Static(protocol.policy()));
        self
    }

    /// Adds several enum-era protocols, in order.
    pub fn protocols(mut self, protocols: &[Protocol]) -> Self {
        for &p in protocols {
            self = self.protocol(p);
        }
        self
    }

    /// Adds a built-in policy by name, resolved through the one
    /// registry ([`policy_from_name`](crate::policy::policy_from_name);
    /// see [`BUILTIN_POLICY_NAMES`](crate::policy::BUILTIN_POLICY_NAMES)).
    ///
    /// # Errors
    /// Returns the unknown name back.
    pub fn policy_named(mut self, name: &str) -> Result<Self, String> {
        match crate::policy::policy_from_name(name) {
            Some(p) => {
                self.policies.push(PolicyEntry::Static(p));
                Ok(self)
            }
            None => Err(name.to_string()),
        }
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Uses seeds `0..n` (the common case).
    pub fn seed_count(self, n: u64) -> Self {
        self.seeds(0..n)
    }

    /// Worker threads: `1` = serial (default), `0` = all cores. Results
    /// are bit-for-bit identical for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the sweep and aggregates statistics per policy.
    ///
    /// # Errors
    /// [`SweepError::InvalidSpec`] for a structurally invalid scenario
    /// ([`Scenario::validate`]), [`SweepError::Environment`] when the
    /// scenario needs more placement slots than the environment's
    /// largest map (or the explicit [`testbed`](SweepSpec::testbed)
    /// override) offers — both detected before any job runs, so a
    /// malformed spec can never panic inside the engine.
    pub fn try_run(&self) -> Result<Vec<SweepStats>, SweepError> {
        self.scenario.validate().map_err(SweepError::InvalidSpec)?;
        self.validate_models()?;
        let testbed = self.resolved_testbed()?;
        let policy_refs = self.policy_refs();
        Ok(sweep_policies(
            self.environment.as_dyn(),
            &testbed,
            &self.scenario,
            &self.cfg,
            &policy_refs,
            &self.seeds,
            self.threads,
        ))
    }

    /// Panicking convenience over [`try_run`](SweepSpec::try_run) for
    /// specs that statically fit their environment.
    pub fn run(&self) -> Vec<SweepStats> {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs a single seed and returns its raw per-policy results — the
    /// replacement for hand-rolling `build_topology` +
    /// [`simulate`](crate::sim::simulate)
    /// when per-run (rather than aggregate) output is wanted.
    ///
    /// # Errors
    /// As [`try_run`](SweepSpec::try_run).
    pub fn try_run_seed(&self, seed: u64) -> Result<SeedResults, SweepError> {
        self.scenario.validate().map_err(SweepError::InvalidSpec)?;
        self.validate_models()?;
        let testbed = self.resolved_testbed()?;
        let policy_refs = self.policy_refs();
        Ok(SweepJob::in_environment(
            self.environment.as_dyn(),
            &testbed,
            &self.scenario,
            &self.cfg,
            &policy_refs,
            seed,
        )
        .run())
    }

    /// Panicking convenience over
    /// [`try_run_seed`](SweepSpec::try_run_seed).
    pub fn run_seed(&self, seed: u64) -> SeedResults {
        self.try_run_seed(seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`try_run_seed`](SweepSpec::try_run_seed) with one caller
    /// observer per resolved policy (see
    /// [`policy_names`](SweepSpec::policy_names) for the order):
    /// `observers[i]` receives policy `i`'s full event stream, labeled
    /// with the job's [`RunIdentity`] — seed, environment registry
    /// name, and the spec's canonical key when
    /// [`canonical`](SweepSpec::canonical) succeeds (`None` for ad-hoc
    /// specs). Observers only listen; results are bit-for-bit those of
    /// [`try_run_seed`](SweepSpec::try_run_seed).
    ///
    /// # Errors
    /// As [`try_run`](SweepSpec::try_run).
    ///
    /// # Panics
    /// When `observers.len()` differs from the resolved policy count.
    pub fn try_run_seed_observed(
        &self,
        seed: u64,
        observers: &mut [&mut dyn RoundObserver],
    ) -> Result<SeedResults, SweepError> {
        self.scenario.validate().map_err(SweepError::InvalidSpec)?;
        self.validate_models()?;
        let testbed = self.resolved_testbed()?;
        let policy_refs = self.policy_refs();
        let canonical_key = self.canonical().ok().map(|c| c.key());
        Ok(SweepJob::in_environment(
            self.environment.as_dyn(),
            &testbed,
            &self.scenario,
            &self.cfg,
            &policy_refs,
            seed,
        )
        .run_observed(canonical_key, observers))
    }

    /// The resolved policy names, in job order — the paper's default
    /// trio when the spec names none. This is the order
    /// [`SeedResults::per_policy`] and the sweep statistics follow, and
    /// what labels per-policy recordings.
    pub fn policy_names(&self) -> Vec<String> {
        self.policy_refs()
            .iter()
            .map(|p| p.name().to_string())
            .collect()
    }

    /// The spec's seed list, in the order [`try_run`](SweepSpec::try_run)
    /// iterates it.
    pub fn seed_list(&self) -> &[u64] {
        &self.seeds
    }

    /// The spec's canonical, content-addressable form — see
    /// [`CanonicalSpec`] for exactly what it encodes.
    ///
    /// Canonicalization requires the spec to be reconstructible from its
    /// canonical form alone: the environment and every policy must carry
    /// registry names (custom implementations must pick names the
    /// registries don't — a collision would alias someone else's cache
    /// entries), there must be no [`testbed`](SweepSpec::testbed)
    /// override, and the config may deviate from the environment's
    /// defaults only in [`rounds`](SweepSpec::rounds) and the
    /// result-neutral channel-cache toggle.
    ///
    /// # Errors
    /// [`SweepError::NotCanonical`] describing the offending part;
    /// [`SweepError::InvalidSpec`] for a structurally invalid scenario.
    pub fn canonical(&self) -> Result<CanonicalSpec, SweepError> {
        // Validate models first: a NaN parameter would otherwise trip
        // the config-equality check below (NaN != NaN) and misreport an
        // invalid spec as merely non-canonical.
        self.validate_models()?;
        if self.testbed.is_some() {
            return Err(SweepError::NotCanonical(
                "explicit testbed override".to_string(),
            ));
        }
        let env = self.environment.as_dyn();
        let env_name = env.name().to_string();
        if environment_from_name(&env_name).is_none() {
            return Err(SweepError::NotCanonical(format!(
                "environment {env_name:?} is not in the registry"
            )));
        }
        // Everything the engine reads from the config besides the round
        // count must sit at the environment's defaults — otherwise the
        // canonical bytes would not determine the results. The channel
        // cache is exempt: on/off is proven bit-identical.
        let mut base = SimConfig::default();
        apply_environment_config(&mut base, env);
        base.rounds = self.cfg.rounds;
        base.cache_channels = self.cfg.cache_channels;
        base.traffic = self.cfg.traffic;
        base.mobility = self.cfg.mobility;
        base.sinr_grid = self.cfg.sinr_grid;
        if base != self.cfg {
            return Err(SweepError::NotCanonical(
                "config deviates from the environment defaults (only rounds, traffic, \
                 mobility and the SINR grid are canonical)"
                    .to_string(),
            ));
        }
        let policy_names: Vec<String> = self
            .policies
            .iter()
            .map(|p| p.as_dyn().name().to_string())
            .collect();
        for name in &policy_names {
            if policy_from_name(name).is_none() {
                return Err(SweepError::NotCanonical(format!(
                    "policy {name:?} is not in the registry"
                )));
            }
        }
        CanonicalSpec::new(
            &self.scenario,
            &env_name,
            &policy_names,
            self.seeds.clone(),
            self.cfg.rounds,
        )?
        .with_traffic(self.cfg.traffic)?
        .with_mobility(self.cfg.mobility)?
        .with_sinr_grid(self.cfg.sinr_grid)
    }

    /// Rejects unvalidatable traffic/mobility parameters before any job
    /// runs (a NaN Poisson mean would hang the arrival sampler; better a
    /// typed error than an engine misbehaving).
    fn validate_models(&self) -> Result<(), SweepError> {
        self.cfg
            .traffic
            .validate()
            .map_err(SweepError::InvalidSpec)?;
        self.cfg
            .mobility
            .validate()
            .map_err(SweepError::InvalidSpec)?;
        self.cfg
            .sinr_grid
            .validate()
            .map_err(SweepError::InvalidSpec)
    }

    fn resolved_testbed(&self) -> Result<Testbed, EnvironmentError> {
        let n = self.scenario.antennas.len();
        match &self.testbed {
            Some(tb) => {
                tb.ensure_capacity(n)?;
                Ok(tb.clone())
            }
            None => self.environment.as_dyn().testbed(n),
        }
    }

    fn policy_refs(&self) -> Vec<&dyn MacPolicy> {
        if self.policies.is_empty() {
            DEFAULT_POLICIES.to_vec()
        } else {
            self.policies.iter().map(|p| p.as_dyn()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Oracle;
    use nplus_channel::placement::Testbed;

    /// Regression: `ci95_total_mbps` used the z = 1.96 normal
    /// approximation at every sample size; at n = 5 the correct
    /// Student-t critical value is 2.776, widening the half-width by
    /// ~42%. Pins the n = 5 half-width exactly.
    #[test]
    fn ci95_uses_student_t_below_30_runs() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mean = 3.0;
        // Sample variance 2.5, standard error sqrt(2.5/5).
        let expected = 2.776 * (2.5f64 / 5.0).sqrt();
        let hw = ci95_half_width(&samples, mean);
        assert!((hw - expected).abs() < 1e-12, "n=5 half-width {hw}");
        // The old normal approximation was strictly narrower.
        assert!(hw > 1.96 * (2.5f64 / 5.0).sqrt() * 1.4);

        // n = 2 hits the fattest tail in the table.
        let hw2 = ci95_half_width(&[0.0, 1.0], 0.5);
        assert!((hw2 - 12.706 * (0.5f64 / 2.0).sqrt()).abs() < 1e-12);
        // Degenerate cases stay zero.
        assert_eq!(ci95_half_width(&[], 0.0), 0.0);
        assert_eq!(ci95_half_width(&[7.0], 7.0), 0.0);
        // At n >= 30 the expanded critical value takes over, continuous
        // with the table (t_29 ≈ 2.045; the expansion gives ≈ 2.042 —
        // no 4% jump down to 1.96 at the boundary).
        let big: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let m = big.iter().sum::<f64>() / 30.0;
        let var = big.iter().map(|x| (x - m).powi(2)).sum::<f64>() / 29.0;
        let crit30 = 1.96 + (1.96f64.powi(3) + 1.96) / (4.0 * 29.0);
        assert!((crit30 - 2.045).abs() < 5e-3, "crit at n=30: {crit30}");
        assert!((ci95_half_width(&big, m) - crit30 * (var / 30.0).sqrt()).abs() < 1e-12);
        // And it converges to the normal approximation for large n.
        let huge: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let hm = huge.iter().sum::<f64>() / 1000.0;
        let hvar = huge.iter().map(|x| (x - hm).powi(2)).sum::<f64>() / 999.0;
        let hw_huge = ci95_half_width(&huge, hm);
        assert!((hw_huge / (1.96 * (hvar / 1000.0).sqrt()) - 1.0).abs() < 2e-3);
    }

    /// The tentpole contract: `sweep_parallel` is bit-for-bit identical
    /// to the serial `sweep` for every thread count.
    #[test]
    fn sweep_parallel_matches_serial_bitwise() {
        let scenario = Scenario::ap_downlink();
        let cfg = SimConfig {
            rounds: 5,
            ..SimConfig::default()
        };
        let protocols = [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming];
        let seeds: Vec<u64> = (0..5).collect();
        let tb = Testbed::sigcomm11();
        let serial = sweep(&tb, &scenario, &cfg, &protocols, &seeds);
        for threads in [2usize, 4, 0] {
            let par = sweep_parallel(&tb, &scenario, &cfg, &protocols, &seeds, threads);
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.policy, p.policy, "{threads} threads");
                assert_eq!(s.n_runs, p.n_runs, "{threads} threads");
                assert_eq!(s.mean_total_mbps, p.mean_total_mbps, "{threads} threads");
                assert_eq!(s.ci95_total_mbps, p.ci95_total_mbps, "{threads} threads");
                assert_eq!(
                    s.mean_per_flow_mbps, p.mean_per_flow_mbps,
                    "{threads} threads"
                );
                assert_eq!(s.mean_dof, p.mean_dof, "{threads} threads");
                assert_eq!(
                    s.mean_fairness.to_bits(),
                    p.mean_fairness.to_bits(),
                    "{threads} threads"
                );
            }
        }
    }

    /// A `SweepJob` is a pure function of its seed: running it twice —
    /// or via the engine by hand — reproduces the result exactly.
    #[test]
    fn sweep_job_is_pure_in_its_seed() {
        let scenario = Scenario::three_pairs();
        let cfg = SimConfig {
            rounds: 4,
            ..SimConfig::default()
        };
        let tb = Testbed::sigcomm11();
        let policies: [&dyn MacPolicy; 1] = [&crate::policy::NPlus];
        let job = SweepJob::new(&tb, &scenario, &cfg, &policies, 7);
        let a = job.run();
        let b = job.run();
        assert_eq!(a.seed, 7);
        assert_eq!(a.per_policy[0].per_flow_mbps, b.per_policy[0].per_flow_mbps);
        assert_eq!(a.per_policy[0].total_mbps, b.per_policy[0].total_mbps);
    }

    /// Regression: `settle_round` used to collect a state's streams by
    /// receiver *node*, so two transmitters concurrently serving the
    /// same receiver — the hidden-terminal star, where a joiner's flow
    /// targets a node another transmission already serves — left empty
    /// per-stream SINR vectors and panicked in `effective_snr`. This is
    /// the exact generated configuration that crashed the sweep binary.
    #[test]
    fn hidden_terminal_concurrent_service_settles() {
        // The generator's `hidden_terminal(3)` at seed 42, written out
        // (testkit's `Scenario` is a separate crate instance inside this
        // crate's own test harness): three transmitters, one shared
        // 2-antenna receiver.
        let scenario = Scenario {
            antennas: vec![2, 1, 3, 4],
            flows: vec![
                super::super::Flow { tx: 1, rx: 0 },
                super::super::Flow { tx: 2, rx: 0 },
                super::super::Flow { tx: 3, rx: 0 },
            ],
        };
        let cfg = SimConfig {
            rounds: 8,
            ..SimConfig::default()
        };
        let seeds: Vec<u64> = (0..4).collect();
        let stats = sweep(
            &Testbed::sigcomm11(),
            &scenario,
            &cfg,
            &[Protocol::NPlus, Protocol::Dot11n],
            &seeds,
        );
        for s in &stats {
            assert!(
                s.mean_total_mbps.is_finite() && s.mean_total_mbps > 0.0,
                "{} produced no goodput on the shared-receiver star",
                s.policy
            );
        }
    }

    #[test]
    fn sweep_aggregates_all_protocols() {
        let scenario = Scenario::three_pairs();
        let cfg = SimConfig {
            rounds: 6,
            ..SimConfig::default()
        };
        let stats = sweep(
            &Testbed::sigcomm11(),
            &scenario,
            &cfg,
            &[Protocol::NPlus, Protocol::Dot11n],
            &[1, 2, 3],
        );
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].policy, "nplus");
        assert_eq!(stats[1].policy, "dot11n");
        for s in &stats {
            assert_eq!(s.n_runs, 3);
            assert!(s.mean_total_mbps.is_finite() && s.mean_total_mbps > 0.0);
            assert!(s.ci95_total_mbps.is_finite() && s.ci95_total_mbps >= 0.0);
            assert_eq!(s.mean_per_flow_mbps.len(), 3);
            assert!(s.mean_dof > 0.0);
            assert!(
                s.mean_fairness > 0.0 && s.mean_fairness <= 1.0 + 1e-12,
                "{} mean fairness {}",
                s.policy,
                s.mean_fairness
            );
        }
    }

    /// The builder facade is a pure re-packaging: a `SweepSpec` run must
    /// equal the equivalent `sweep_parallel` call bit-for-bit, at every
    /// thread count, with defaults filled in as documented.
    #[test]
    fn sweep_spec_matches_the_raw_entry_points() {
        let scenario = Scenario::ap_downlink();
        let cfg = SimConfig {
            rounds: 4,
            ..SimConfig::default()
        };
        let protocols = [Protocol::Dot11n, Protocol::NPlus];
        let seeds: Vec<u64> = (0..3).collect();
        let tb = Testbed::fitting(scenario.antennas.len());
        let raw = sweep_parallel(&tb, &scenario, &cfg, &protocols, &seeds, 2);
        let spec = SweepSpec::new(scenario)
            .rounds(4)
            .protocols(&protocols)
            .seed_count(3)
            .threads(2)
            .run();
        assert_eq!(raw.len(), spec.len());
        for (r, s) in raw.iter().zip(&spec) {
            assert_eq!(r.policy, s.policy);
            assert_eq!(r.mean_total_mbps, s.mean_total_mbps);
            assert_eq!(r.ci95_total_mbps, s.ci95_total_mbps);
            assert_eq!(r.mean_per_flow_mbps, s.mean_per_flow_mbps);
            assert_eq!(r.mean_dof, s.mean_dof);
            assert_eq!(r.mean_fairness.to_bits(), s.mean_fairness.to_bits());
        }
    }

    /// The spec's default policy set is the paper's comparison trio, and
    /// `run_seed` exposes raw per-run results in policy order.
    #[test]
    fn sweep_spec_defaults_and_run_seed() {
        let spec = SweepSpec::new(Scenario::three_pairs())
            .rounds(3)
            .seed_count(2);
        let stats = spec.run();
        let names: Vec<&str> = stats.iter().map(|s| s.policy.as_str()).collect();
        assert_eq!(names, ["dot11n", "beamforming", "nplus"]);
        let seed_results = spec.run_seed(0);
        assert_eq!(seed_results.seed, 0);
        assert_eq!(seed_results.per_policy.len(), 3);
        // run_seed(0) is exactly the sweep's first job.
        let one = SweepSpec::new(Scenario::three_pairs())
            .rounds(3)
            .seeds([0u64])
            .run();
        assert_eq!(
            one[2].mean_total_mbps,
            seed_results.per_policy[2].total_mbps
        );
    }

    /// Selecting the default environment explicitly is a no-op: stats
    /// are bit-for-bit the defaults', by value and by name.
    #[test]
    fn default_environment_is_a_bitwise_noop() {
        use nplus_channel::environment::Sigcomm11Indoor;
        let base = SweepSpec::new(Scenario::three_pairs())
            .rounds(3)
            .seed_count(2)
            .protocol(Protocol::NPlus)
            .run();
        let by_value = SweepSpec::new(Scenario::three_pairs())
            .rounds(3)
            .seed_count(2)
            .protocol(Protocol::NPlus)
            .environment(Sigcomm11Indoor::default())
            .run();
        let by_name = SweepSpec::new(Scenario::three_pairs())
            .rounds(3)
            .seed_count(2)
            .protocol(Protocol::NPlus)
            .environment_named("sigcomm11")
            .expect("registry name")
            .run();
        for other in [&by_value, &by_name] {
            assert_eq!(base[0].mean_total_mbps, other[0].mean_total_mbps);
            assert_eq!(base[0].mean_per_flow_mbps, other[0].mean_per_flow_mbps);
            assert_eq!(base[0].mean_dof, other[0].mean_dof);
        }
    }

    /// Every non-default environment draws a genuinely different world:
    /// same seeds, different statistics.
    #[test]
    fn environments_change_sweep_results() {
        // Enough rounds/seeds that joins actually happen: hardware (and
        // the §4 threshold) only enters through join planning, so a
        // join-free sample would make `degraded_hardware` a no-op.
        let run_in = |name: &str| {
            SweepSpec::new(Scenario::three_pairs())
                .rounds(8)
                .seed_count(3)
                .protocol(Protocol::NPlus)
                .environment_named(name)
                .expect("registry name")
                .run()
        };
        let base = run_in("sigcomm11");
        for name in ["outdoor", "rich_scatter", "degraded_hardware"] {
            let stats = run_in(name);
            assert!(
                stats[0].mean_total_mbps.is_finite() && stats[0].mean_total_mbps > 0.0,
                "{name} produced no goodput"
            );
            assert_ne!(
                stats[0].mean_total_mbps, base[0].mean_total_mbps,
                "{name} statistics identical to the indoor world"
            );
        }
        assert!(SweepSpec::new(Scenario::three_pairs())
            .environment_named("vacuum")
            .is_err());
    }

    /// A scenario too large for the environment's maps — or for an
    /// explicit testbed override — is a clean `Err`, not a panic.
    #[test]
    fn oversized_scenarios_error_cleanly() {
        let antennas = vec![1usize; 41];
        let flows = vec![super::super::Flow { tx: 0, rx: 1 }];
        let scenario = Scenario {
            antennas,
            flows: flows.clone(),
        };
        let err = SweepSpec::new(scenario).try_run().unwrap_err();
        assert_eq!(
            err,
            SweepError::Environment(nplus_channel::environment::EnvironmentError::TooManyNodes {
                requested: 41,
                capacity: 40
            })
        );
        assert_eq!(err.to_string(), "cannot place 41 nodes on 40 locations");
        // Explicit override smaller than the scenario.
        let small = Testbed::from_locations(Testbed::sigcomm11().locations()[..2].to_vec());
        let spec = SweepSpec::new(Scenario::three_pairs()).testbed(small);
        assert!(spec.try_run().is_err());
        assert!(spec.try_run_seed(0).is_err());
    }

    /// A structurally invalid scenario — out-of-range flow endpoints,
    /// self-flows, zero-antenna nodes — is a typed `InvalidSpec` error
    /// from every served entry point, never a panic inside the engine.
    #[test]
    fn malformed_scenarios_error_instead_of_panicking() {
        let cases: [(Scenario, &str); 4] = [
            (
                Scenario {
                    antennas: vec![2, 2],
                    flows: vec![super::super::Flow { tx: 0, rx: 7 }],
                },
                "outside the 2-node scenario",
            ),
            (
                Scenario {
                    antennas: vec![2, 2],
                    flows: vec![super::super::Flow { tx: 1, rx: 1 }],
                },
                "transmits to itself",
            ),
            (
                Scenario {
                    antennas: vec![2, 0],
                    flows: vec![super::super::Flow { tx: 0, rx: 1 }],
                },
                "antenna count 0",
            ),
            (
                Scenario {
                    antennas: vec![2, 2],
                    flows: vec![],
                },
                "no flows",
            ),
        ];
        for (scenario, needle) in cases {
            let spec = SweepSpec::new(scenario.clone());
            for err in [
                spec.try_run().unwrap_err(),
                spec.try_run_seed(0).unwrap_err(),
            ] {
                match &err {
                    SweepError::InvalidSpec(msg) => {
                        assert!(msg.contains(needle), "{msg:?} missing {needle:?}")
                    }
                    other => panic!("expected InvalidSpec, got {other:?}"),
                }
            }
        }
    }

    /// The canonical key is a pure function of the spec's identity:
    /// builder-call order and the thread count don't move it, while any
    /// change to scenario/environment/policies/seeds/rounds does.
    #[test]
    fn canonical_key_identity_and_sensitivity() {
        let base = SweepSpec::new(Scenario::three_pairs())
            .rounds(7)
            .seed_count(4)
            .protocols(&[Protocol::Dot11n, Protocol::NPlus]);
        let key = base.canonical().expect("canonicalizable").key();

        // Same spec, different builder-call orders and thread counts.
        let reordered = SweepSpec::new(Scenario::three_pairs())
            .protocols(&[Protocol::Dot11n, Protocol::NPlus])
            .seed_count(4)
            .threads(2)
            .rounds(7);
        assert_eq!(reordered.canonical().unwrap().key(), key);
        let by_name = SweepSpec::new(Scenario::three_pairs())
            .environment_named("sigcomm11")
            .unwrap()
            .policy_named("dot11n")
            .unwrap()
            .policy_named("nplus")
            .unwrap()
            .rounds(7)
            .seeds([0u64, 1, 2, 3]);
        assert_eq!(by_name.canonical().unwrap().key(), key);

        // An empty policy list normalizes to the explicit default trio.
        let implicit = SweepSpec::new(Scenario::three_pairs())
            .rounds(7)
            .seed_count(4);
        let explicit = SweepSpec::new(Scenario::three_pairs())
            .rounds(7)
            .seed_count(4)
            .protocols(&[Protocol::Dot11n, Protocol::Beamforming, Protocol::NPlus]);
        assert_eq!(
            implicit.canonical().unwrap().key(),
            explicit.canonical().unwrap().key()
        );

        // Each identity field moves the key.
        let variants = [
            SweepSpec::new(Scenario::ap_downlink())
                .rounds(7)
                .seed_count(4)
                .protocols(&[Protocol::Dot11n, Protocol::NPlus]),
            SweepSpec::new(Scenario::three_pairs())
                .rounds(8)
                .seed_count(4)
                .protocols(&[Protocol::Dot11n, Protocol::NPlus]),
            SweepSpec::new(Scenario::three_pairs())
                .rounds(7)
                .seed_count(5)
                .protocols(&[Protocol::Dot11n, Protocol::NPlus]),
            SweepSpec::new(Scenario::three_pairs())
                .rounds(7)
                .seeds([1u64, 0, 2, 3])
                .protocols(&[Protocol::Dot11n, Protocol::NPlus]),
            SweepSpec::new(Scenario::three_pairs())
                .rounds(7)
                .seed_count(4)
                .protocols(&[Protocol::NPlus, Protocol::Dot11n]),
            SweepSpec::new(Scenario::three_pairs())
                .rounds(7)
                .seed_count(4)
                .protocols(&[Protocol::Dot11n, Protocol::NPlus])
                .environment_named("outdoor")
                .unwrap(),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.canonical().unwrap().key(), key, "variant {i} collided");
        }
    }

    /// `CanonicalSpec::to_spec` reconstructs a spec whose results are
    /// bit-identical to the original's, at 1 and 2 threads — the
    /// cache-correctness contract end to end.
    #[test]
    fn canonical_roundtrip_reproduces_results_bitwise() {
        let spec = SweepSpec::new(Scenario::ap_downlink())
            .rounds(4)
            .seed_count(3)
            .protocols(&[Protocol::NPlus, Protocol::Dot11n])
            .environment_named("rich_scatter")
            .unwrap();
        let canon = spec.canonical().expect("canonicalizable");
        let direct = spec.try_run().expect("runs");
        for threads in [1usize, 2] {
            let rebuilt = canon.to_spec(threads).expect("reconstructs");
            let stats = rebuilt.try_run().expect("runs");
            assert_eq!(direct.len(), stats.len(), "{threads} threads");
            for (a, b) in direct.iter().zip(&stats) {
                assert_eq!(a.policy, b.policy, "{threads} threads");
                assert_eq!(a.mean_total_mbps, b.mean_total_mbps, "{threads} threads");
                assert_eq!(a.ci95_total_mbps, b.ci95_total_mbps, "{threads} threads");
                assert_eq!(a.mean_per_flow_mbps, b.mean_per_flow_mbps);
                assert_eq!(a.mean_dof, b.mean_dof);
                assert_eq!(a.mean_fairness.to_bits(), b.mean_fairness.to_bits());
            }
        }
        // And the canonical form survives its own roundtrip.
        assert_eq!(canon.to_spec(1).unwrap().canonical().unwrap(), canon);
    }

    /// Traffic and mobility are canonical (key-moving) fields, not
    /// canonicalization failures: non-default models encode into the
    /// key, parameter changes move it, and the full round-trip through
    /// `to_spec` reproduces results bitwise.
    #[test]
    fn traffic_and_mobility_are_canonical_fields() {
        let fresh = || {
            SweepSpec::new(Scenario::three_pairs())
                .rounds(5)
                .seed_count(2)
                .protocol(Protocol::NPlus)
        };
        let key = fresh().canonical().unwrap().key();
        let poisson = TrafficModel::Poisson {
            mean_per_round: 0.5,
        };
        let waypoint = MobilityModel::Waypoint {
            step_m: 2.0,
            epoch_rounds: 4,
        };

        let p_spec = fresh().traffic(poisson);
        let p_canon = p_spec
            .canonical()
            .expect("non-default traffic is canonical");
        assert_eq!(p_canon.traffic, poisson);
        assert_ne!(p_canon.key(), key, "traffic model must move the key");

        let m_canon = fresh().mobility(waypoint).canonical().unwrap();
        assert_eq!(m_canon.mobility, waypoint);
        assert_ne!(m_canon.key(), key, "mobility model must move the key");
        assert_ne!(m_canon.key(), p_canon.key());

        // Parameters are part of the identity, not just the variant.
        let p2 = fresh()
            .traffic(TrafficModel::Poisson {
                mean_per_round: 0.7,
            })
            .canonical()
            .unwrap();
        assert_ne!(p2.key(), p_canon.key(), "poisson mean must move the key");

        // Round-trip: the reconstructed spec reruns bitwise.
        let direct = p_spec.try_run().expect("runs");
        let rebuilt = p_canon.to_spec(2).expect("reconstructs").try_run().unwrap();
        for (a, b) in direct.iter().zip(&rebuilt) {
            assert_eq!(a.mean_total_mbps, b.mean_total_mbps);
            assert_eq!(a.mean_per_flow_mbps, b.mean_per_flow_mbps);
        }
        assert_eq!(p_canon.to_spec(1).unwrap().canonical().unwrap(), p_canon);

        // Invalid model parameters are typed errors everywhere.
        let bad = TrafficModel::Poisson {
            mean_per_round: f64::NAN,
        };
        assert!(matches!(
            fresh().traffic(bad).try_run(),
            Err(SweepError::InvalidSpec(_))
        ));
        assert!(matches!(
            fresh().traffic(bad).canonical(),
            Err(SweepError::InvalidSpec(_))
        ));
        assert!(matches!(
            CanonicalSpec::new(&Scenario::three_pairs(), "sigcomm11", &[], vec![0], 5)
                .unwrap()
                .with_traffic(bad),
            Err(SweepError::InvalidSpec(_))
        ));
    }

    /// The SINR grid tier is a canonical (key-moving) field: a decimated
    /// run can never be served from a full-grid cache entry, the k
    /// parameter is part of the identity, and the round-trip through
    /// `to_spec` preserves the tier.
    #[test]
    fn sinr_grid_is_a_canonical_field() {
        let fresh = || {
            SweepSpec::new(Scenario::three_pairs())
                .rounds(5)
                .seed_count(2)
                .protocol(Protocol::NPlus)
        };
        let full_key = fresh().canonical().unwrap().key();
        let dec = fresh().sinr_grid(SinrGrid::Decimated(4));
        let dec_canon = dec.canonical().expect("decimated tier is canonical");
        assert_eq!(dec_canon.sinr_grid, SinrGrid::Decimated(4));
        assert_ne!(dec_canon.key(), full_key, "tier must move the key");
        let dec8 = fresh()
            .sinr_grid(SinrGrid::Decimated(8))
            .canonical()
            .unwrap();
        assert_ne!(dec8.key(), dec_canon.key(), "k must move the key");

        // Round-trip: tier survives reconstruction and reruns bitwise.
        let rebuilt = dec_canon.to_spec(1).expect("reconstructs");
        assert_eq!(rebuilt.canonical().unwrap(), dec_canon);
        let direct = dec.try_run().expect("runs");
        let again = rebuilt.try_run().expect("runs");
        for (a, b) in direct.iter().zip(&again) {
            assert_eq!(a.mean_total_mbps.to_bits(), b.mean_total_mbps.to_bits());
        }

        // Invalid tiers are typed errors everywhere.
        assert!(matches!(
            fresh().sinr_grid(SinrGrid::Decimated(1)).try_run(),
            Err(SweepError::InvalidSpec(_))
        ));
        assert!(matches!(
            fresh().sinr_grid(SinrGrid::Decimated(0)).canonical(),
            Err(SweepError::InvalidSpec(_))
        ));
    }

    /// Specs that cannot be reconstructed from names alone refuse
    /// canonicalization with a description of the offending part.
    #[test]
    fn non_registry_specs_are_not_canonical() {
        let not_canonical = |spec: &SweepSpec, needle: &str| match spec.canonical() {
            Err(SweepError::NotCanonical(msg)) => {
                assert!(msg.contains(needle), "{msg:?} missing {needle:?}")
            }
            other => panic!("expected NotCanonical({needle}), got {other:?}"),
        };
        not_canonical(
            &SweepSpec::new(Scenario::three_pairs()).testbed(Testbed::sigcomm11()),
            "testbed",
        );
        let tweaked_cfg = SimConfig {
            packet_bytes: 900,
            ..SimConfig::default()
        };
        not_canonical(
            &SweepSpec::new(Scenario::three_pairs()).config(tweaked_cfg),
            "config deviates",
        );
        // Invalid requests are typed errors from the constructor too.
        assert!(matches!(
            CanonicalSpec::new(&Scenario::three_pairs(), "vacuum", &[], vec![0], 5),
            Err(SweepError::UnknownEnvironment(n)) if n == "vacuum"
        ));
        assert!(matches!(
            CanonicalSpec::new(
                &Scenario::three_pairs(),
                "sigcomm11",
                &["aloha".to_string()],
                vec![0],
                5
            ),
            Err(SweepError::UnknownPolicy(n)) if n == "aloha"
        ));
        assert!(matches!(
            CanonicalSpec::new(&Scenario::three_pairs(), "sigcomm11", &[], vec![], 5),
            Err(SweepError::InvalidSpec(m)) if m.contains("seed")
        ));
        assert!(matches!(
            CanonicalSpec::new(&Scenario::three_pairs(), "sigcomm11", &[], vec![0], 0),
            Err(SweepError::InvalidSpec(m)) if m.contains("rounds")
        ));
    }

    /// Oracle plugs into sweeps like any other policy and reports under
    /// its own name; `policy_named` resolves the full registry.
    #[test]
    fn sweep_spec_accepts_custom_policies() {
        let stats = SweepSpec::new(Scenario::three_pairs())
            .rounds(2)
            .seed_count(2)
            .policy(Oracle)
            .policy_named("greedy_join")
            .expect("registry name")
            .run();
        assert_eq!(stats[0].policy, "oracle");
        assert_eq!(stats[1].policy, "greedy_join");
        assert!(stats[0].mean_total_mbps > 0.0);
        assert!(SweepSpec::new(Scenario::three_pairs())
            .policy_named("aloha")
            .is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Property form of the canonical-key contract: for arbitrary
        /// (seeds, rounds, policy subset, environment), two specs built
        /// with their builder calls in opposite orders — one of them at
        /// a different thread count — hash identically, while flipping
        /// any single identity field moves the key.
        #[test]
        fn canonical_key_is_order_invariant_and_field_sensitive(
            seed_lo in 0u64..50,
            n_seeds in 1u64..6,
            rounds in 1usize..10,
            policy_pick in 0usize..3,
            env_pick in 0usize..4,
        ) {
            let policies: &[Protocol] = match policy_pick {
                0 => &[Protocol::NPlus],
                1 => &[Protocol::Dot11n, Protocol::NPlus],
                _ => &[Protocol::Beamforming],
            };
            let env = BUILTIN_ENVIRONMENT_NAMES[env_pick];
            let forward = SweepSpec::new(Scenario::three_pairs())
                .environment_named(env).unwrap()
                .rounds(rounds)
                .seeds(seed_lo..seed_lo + n_seeds)
                .protocols(policies);
            let backward = SweepSpec::new(Scenario::three_pairs())
                .protocols(policies)
                .seeds(seed_lo..seed_lo + n_seeds)
                .threads(4)
                .rounds(rounds)
                .environment_named(env).unwrap();
            let key = forward.canonical().unwrap().key();
            proptest::prop_assert_eq!(backward.canonical().unwrap().key(), key);

            // Single-field flips all move the key.
            let more_rounds = SweepSpec::new(Scenario::three_pairs())
                .environment_named(env).unwrap()
                .rounds(rounds + 1)
                .seeds(seed_lo..seed_lo + n_seeds)
                .protocols(policies);
            proptest::prop_assert_ne!(more_rounds.canonical().unwrap().key(), key);
            let shifted_seeds = SweepSpec::new(Scenario::three_pairs())
                .environment_named(env).unwrap()
                .rounds(rounds)
                .seeds(seed_lo + 1..seed_lo + n_seeds + 1)
                .protocols(policies);
            proptest::prop_assert_ne!(shifted_seeds.canonical().unwrap().key(), key);
            let extra_policy = SweepSpec::new(Scenario::three_pairs())
                .environment_named(env).unwrap()
                .rounds(rounds)
                .seeds(seed_lo..seed_lo + n_seeds)
                .protocols(policies)
                .policy(Oracle);
            proptest::prop_assert_ne!(extra_policy.canonical().unwrap().key(), key);
            let other_env = BUILTIN_ENVIRONMENT_NAMES[(env_pick + 1) % 4];
            let moved_env = SweepSpec::new(Scenario::three_pairs())
                .environment_named(other_env).unwrap()
                .rounds(rounds)
                .seeds(seed_lo..seed_lo + n_seeds)
                .protocols(policies);
            proptest::prop_assert_ne!(moved_env.canonical().unwrap().key(), key);
        }
    }
}
