//! Link-level abstraction: zero-forcing decode SINRs through precoded
//! MIMO channels.
//!
//! The throughput experiments (Figs. 12–13) need per-stream decode
//! quality for every receiver under every combination of concurrent
//! precoded transmissions. Running the sample-level Viterbi chain for
//! every packet of every Monte-Carlo round would be both slow and
//! unnecessary — the standard link-to-system mapping is: compute the
//! post-zero-forcing SINR per subcarrier and stream, reduce to an
//! effective SNR, and map through the rate table. The sample-level path
//! (used by the Fig. 9/11 experiments and the examples) validates this
//! abstraction.
//!
//! The receiver's zero-forcing behaviour matches §3.3: it stacks its
//! wanted streams' effective channel vectors together with the directions
//! of the interference it knows about (the aligned/unwanted space) and
//! inverts. Residual interference that the transmitters failed to cancel
//! (hardware error) is *not* known to the receiver and degrades the SINR
//! — exactly the 0.8/1.3 dB effect of Fig. 11.

use nplus_linalg::{
    pinv, pinv_into, CMatrix, CMatrixSoA, CVector, Complex64, PinvWorkspace, Subspace,
};
use nplus_phy::esnr::effective_snr;
use nplus_phy::modulation::Modulation;
use nplus_phy::rates::{RateIndex, RATE_TABLE};
use nplus_phy::RATE_ESNR_THRESHOLDS_DB;

/// The decode environment of one receiver on one subcarrier.
#[derive(Debug, Clone)]
pub struct SubcarrierObservation {
    /// Effective channel vector of each wanted stream (ambient = receive
    /// antennas): `H_own · v_i` for the receiver's streams.
    pub wanted: Vec<CVector>,
    /// Directions of interference the receiver knows and can project out:
    /// the aligned interference / its unwanted space basis.
    pub known_interference: Vec<CVector>,
    /// Leakage vectors of interference the receiver does *not* know:
    /// residual arrival vectors (already scaled by their stream power).
    pub residual_interference: Vec<CVector>,
    /// Receiver noise power (1.0 in the medium's normalized units).
    pub noise_power: f64,
}

/// Computes the post-ZF SINR (linear) of each wanted stream for one
/// subcarrier observation.
///
/// Returns one SINR per wanted stream; zero when the ZF matrix is
/// singular (wanted + known interference exceed the antenna budget or are
/// degenerate).
pub fn zf_sinr(obs: &SubcarrierObservation) -> Vec<f64> {
    zf_sinr_slices(
        &obs.wanted,
        &obs.known_interference,
        &obs.residual_interference,
        obs.noise_power,
    )
}

/// Slice form of [`zf_sinr`]: identical arithmetic without requiring the
/// caller to assemble an owned [`SubcarrierObservation`]. The simulator's
/// hot path passes its per-round scratch buffers and cached subspace
/// bases here directly.
pub fn zf_sinr_slices(
    wanted: &[CVector],
    known_interference: &[CVector],
    residual_interference: &[CVector],
    noise_power: f64,
) -> Vec<f64> {
    let n_wanted = wanted.len();
    if n_wanted == 0 {
        return Vec::new();
    }
    let n_ant = wanted[0].len();
    let n_cols = n_wanted + known_interference.len();
    if n_cols > n_ant {
        // Over-subscribed receive space: undecodable.
        return vec![0.0; n_wanted];
    }
    // Assemble the ZF matrix from the borrowed columns without cloning
    // each vector first.
    let col_refs: Vec<&CVector> = wanted.iter().chain(known_interference).collect();
    let a = CMatrix::from_col_refs(&col_refs);
    let w = match pinv(&a) {
        Ok(w) => w,
        Err(_) => return vec![0.0; n_wanted],
    };
    (0..n_wanted)
        .map(|i| {
            // ZF: row · wanted_i = 1 by construction; noise and residual
            // interference pass through the filter. Work directly on the
            // i-th row of W — `row_i · conj(conj(r)) = Σ_j w_ij · r_j` —
            // so no per-row or per-residual vectors are materialized.
            let noise: f64 = (0..n_ant).map(|j| w[(i, j)].norm_sqr()).sum::<f64>() * noise_power;
            let resid: f64 = residual_interference
                .iter()
                .map(|r| {
                    (0..n_ant)
                        .map(|j| w[(i, j)] * r[j])
                        .sum::<Complex64>()
                        .norm_sqr()
                })
                .sum();
            1.0 / (noise + resid).max(1e-300)
        })
        .collect()
}

/// Reusable buffers for [`zf_sinr_slices_into`] — one per engine, reused
/// across every (round × receiver × subcarrier) evaluation.
#[derive(Debug, Clone, Default)]
pub struct ZfWorkspace {
    a: CMatrixSoA,
    pinv: PinvWorkspace,
}

/// Pooled sibling of [`zf_sinr_slices`]: identical arithmetic through the
/// split-storage pseudo-inverse kernel (`pinv_into` replicates `pinv`
/// operation for operation), with the ZF matrix assembled into a reusable
/// buffer and the SINRs written into `out`. Seeded results are bit-for-bit
/// the allocating path's.
pub fn zf_sinr_slices_into(
    wanted: &[CVector],
    known_interference: &[CVector],
    residual_interference: &[CVector],
    noise_power: f64,
    ws: &mut ZfWorkspace,
    out: &mut Vec<f64>,
) {
    out.clear();
    let n_wanted = wanted.len();
    if n_wanted == 0 {
        return;
    }
    let n_ant = wanted[0].len();
    let n_cols = n_wanted + known_interference.len();
    if n_cols > n_ant {
        // Over-subscribed receive space: undecodable.
        out.resize(n_wanted, 0.0);
        return;
    }
    // Assemble the ZF matrix column by column (wanted, then known
    // interference) — the same values `from_col_refs` lays out.
    ws.a.reset(n_ant, n_cols);
    for (j, v) in wanted.iter().chain(known_interference).enumerate() {
        for (i, z) in v.iter().enumerate() {
            ws.a.set(i, j, *z);
        }
    }
    if pinv_into(&ws.a, &mut ws.pinv).is_err() {
        out.resize(n_wanted, 0.0);
        return;
    }
    let w = &ws.pinv.out;
    for i in 0..n_wanted {
        // ZF: row · wanted_i = 1 by construction; noise and residual
        // interference pass through the filter (same row-walk as
        // `zf_sinr_slices`).
        let noise: f64 = (0..n_ant).map(|j| w.get(i, j).norm_sqr()).sum::<f64>() * noise_power;
        let mut resid = 0.0f64;
        for r in residual_interference {
            let mut acc = Complex64::ZERO;
            for j in 0..n_ant {
                acc += w.get(i, j) * r[j];
            }
            resid += acc.norm_sqr();
        }
        out.push(1.0 / (noise + resid).max(1e-300));
    }
}

/// Reduces per-subcarrier SINRs of one stream to a rate choice.
///
/// `per_subcarrier_sinr[k]` is the stream's SINR on occupied subcarrier
/// `k`. Returns `None` when even the most robust rate cannot be
/// sustained.
pub fn select_stream_rate(per_subcarrier_sinr: &[f64]) -> Option<RateIndex> {
    if per_subcarrier_sinr.is_empty() {
        return None;
    }
    let mut best = None;
    // The 8 rate entries share 4 modulations, and the ESNR is a pure
    // function of (modulation, SINR track) — evaluate each modulation's
    // BER fold and inversion once and reuse it for both coding rates.
    let mut esnr_db_by_mod: [Option<f64>; 4] = [None; 4];
    for (idx, mcs) in RATE_TABLE.iter().enumerate() {
        let slot = &mut esnr_db_by_mod[mcs.modulation as usize];
        let esnr_db = *slot.get_or_insert_with(|| {
            let esnr = effective_snr(mcs.modulation, per_subcarrier_sinr);
            10.0 * esnr.max(1e-300).log10()
        });
        if esnr_db >= RATE_ESNR_THRESHOLDS_DB[idx] {
            best = Some(idx);
        }
    }
    best
}

/// Effective SNR (dB) of a stream for reporting (uses the QPSK curve as a
/// modulation-neutral middle ground, as the ESNR paper suggests for
/// summarizing).
pub fn stream_esnr_db(per_subcarrier_sinr: &[f64]) -> f64 {
    10.0 * effective_snr(Modulation::Qpsk, per_subcarrier_sinr)
        .max(1e-300)
        .log10()
}

/// Convenience: builds the known-interference list for a receiver that
/// advertised unwanted space `u` — its basis vectors are the directions
/// aligned interference arrives from.
pub fn known_interference_from_unwanted(u: &Subspace) -> Vec<CVector> {
    u.basis().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::c64;

    fn v(entries: &[(f64, f64)]) -> CVector {
        CVector::from_vec(entries.iter().map(|&(r, i)| c64(r, i)).collect())
    }

    #[test]
    fn clean_single_stream_snr() {
        // One wanted stream, no interference: SINR = |h|^2 / noise for a
        // matched filter... ZF with a single column is the matched filter:
        // w = h^H/|h|^2, noise out = sigma^2/|h|^2.
        let h = v(&[(3.0, 0.0), (4.0, 0.0)]); // |h|^2 = 25
        let obs = SubcarrierObservation {
            wanted: vec![h],
            known_interference: vec![],
            residual_interference: vec![],
            noise_power: 1.0,
        };
        let sinr = zf_sinr(&obs);
        assert_eq!(sinr.len(), 1);
        assert!((sinr[0] - 25.0).abs() < 1e-9, "sinr {}", sinr[0]);
    }

    #[test]
    fn known_interference_costs_sin_theta() {
        // Fig. 7: decoding q orthogonal to p yields |q|² sin²θ.
        let q = v(&[(1.0, 0.0), (0.0, 0.0)]).scale_re(5.0);
        // Interference at 45 degrees.
        let p = v(&[(1.0, 0.0), (1.0, 0.0)]);
        let obs = SubcarrierObservation {
            wanted: vec![q.clone()],
            known_interference: vec![p],
            residual_interference: vec![],
            noise_power: 1.0,
        };
        let sinr = zf_sinr(&obs)[0];
        // sin²(45°) = 0.5 → SINR = 25 · 0.5 = 12.5.
        assert!((sinr - 12.5).abs() < 1e-9, "sinr {sinr}");
    }

    #[test]
    fn residual_interference_lowers_sinr() {
        let h = v(&[(5.0, 0.0), (0.0, 0.0)]);
        let clean = SubcarrierObservation {
            wanted: vec![h.clone()],
            known_interference: vec![],
            residual_interference: vec![],
            noise_power: 1.0,
        };
        let dirty = SubcarrierObservation {
            residual_interference: vec![v(&[(0.5, 0.0), (0.0, 0.0)])],
            ..clean.clone()
        };
        let s_clean = zf_sinr(&clean)[0];
        let s_dirty = zf_sinr(&dirty)[0];
        assert!(s_dirty < s_clean);
        // Residual of power 0.25 against noise 1: SINR = 25/1.25 = 20.
        assert!((s_dirty - 20.0).abs() < 1e-9, "sinr {s_dirty}");
    }

    #[test]
    fn orthogonal_interference_is_free() {
        let h = v(&[(5.0, 0.0), (0.0, 0.0)]);
        let orth = v(&[(0.0, 0.0), (1.0, 0.0)]);
        let obs = SubcarrierObservation {
            wanted: vec![h],
            known_interference: vec![orth],
            residual_interference: vec![],
            noise_power: 1.0,
        };
        let sinr = zf_sinr(&obs)[0];
        assert!((sinr - 25.0).abs() < 1e-9, "sinr {sinr}");
    }

    #[test]
    fn oversubscribed_receiver_fails() {
        let obs = SubcarrierObservation {
            wanted: vec![v(&[(1.0, 0.0), (0.0, 0.0)])],
            known_interference: vec![v(&[(0.0, 0.0), (1.0, 0.0)]), v(&[(1.0, 0.0), (1.0, 0.0)])],
            residual_interference: vec![],
            noise_power: 1.0,
        };
        assert_eq!(zf_sinr(&obs), vec![0.0]);
    }

    #[test]
    fn two_stream_mimo_decode() {
        // Orthogonal columns: each stream gets its full power.
        let h1 = v(&[(2.0, 0.0), (0.0, 0.0)]);
        let h2 = v(&[(0.0, 0.0), (3.0, 0.0)]);
        let obs = SubcarrierObservation {
            wanted: vec![h1, h2],
            known_interference: vec![],
            residual_interference: vec![],
            noise_power: 1.0,
        };
        let sinr = zf_sinr(&obs);
        assert!((sinr[0] - 4.0).abs() < 1e-9);
        assert!((sinr[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn rate_selection_monotone_in_sinr() {
        let low = vec![10f64.powf(0.3); 52];
        let high = vec![10f64.powf(2.6); 52];
        let r_low = select_stream_rate(&low);
        let r_high = select_stream_rate(&high);
        assert!(r_high.unwrap() >= r_low.unwrap_or(0));
        assert_eq!(r_high, Some(7));
        let dead = vec![0.01; 52];
        assert_eq!(select_stream_rate(&dead), None);
    }

    /// The pooled split-storage ZF path is bit-for-bit the allocating
    /// path, including the degenerate (empty / oversubscribed / singular)
    /// branches.
    #[test]
    fn pooled_zf_matches_allocating_bitwise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let mut ws = ZfWorkspace::default();
        let mut out = Vec::new();
        let rv = |n: usize, rng: &mut StdRng| {
            CVector::from_vec(
                (0..n)
                    .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen()))
                    .collect(),
            )
        };
        for _ in 0..200 {
            let n_ant = rng.gen_range(1..=4usize);
            let n_wanted = rng.gen_range(0..=n_ant + 1);
            let n_known = rng.gen_range(0..=2usize);
            let n_resid = rng.gen_range(0..=2usize);
            let wanted: Vec<CVector> = (0..n_wanted).map(|_| rv(n_ant, &mut rng)).collect();
            let known: Vec<CVector> = (0..n_known).map(|_| rv(n_ant, &mut rng)).collect();
            let resid: Vec<CVector> = (0..n_resid).map(|_| rv(n_ant, &mut rng)).collect();
            let reference = zf_sinr_slices(&wanted, &known, &resid, 1.0);
            zf_sinr_slices_into(&wanted, &known, &resid, 1.0, &mut ws, &mut out);
            assert_eq!(reference.len(), out.len());
            for (a, b) in reference.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // A duplicated column makes the Gram matrix singular: both paths
        // must agree on the zero fallback.
        let v = rv(3, &mut rng);
        let dup = [v.clone(), v.clone()];
        let reference = zf_sinr_slices(&dup, &[], &[], 1.0);
        zf_sinr_slices_into(&dup, &[], &[], 1.0, &mut ws, &mut out);
        assert_eq!(reference, out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn esnr_reporting_finite() {
        let sinrs = vec![10.0; 52];
        let db = stream_esnr_db(&sinrs);
        assert!((db - 10.0).abs() < 0.5, "esnr {db}");
    }
}
