//! The n+ precoder: joining ongoing transmissions without interfering
//! (paper §3.3, Claims 3.1–3.5, Eq. 7).
//!
//! A transmitter that wants to join computes, per OFDM subcarrier, one
//! pre-coding vector per stream such that:
//!
//! * at every receiver whose wanted streams fill its whole receive space
//!   (`n = N`) the signal is **nulled** (Eq. 5);
//! * at every receiver with spare dimensions the signal is **aligned**
//!   into its unwanted space (Eq. 6) — it lands on top of interference
//!   the receiver already projects away;
//! * when the transmitter serves several receivers at once (Fig. 4), each
//!   stream is additionally aligned into the unwanted space of the
//!   transmitter's *other* receivers (Claim 3.5).
//!
//! Nulling is the `U = {0}` special case of alignment (the complement of
//! an empty unwanted space is everything, so the constraint rows are all
//! of `H`), which keeps the implementation unified.

use nplus_linalg::{
    mul_into, null_space, null_space_into, CMatrix, CMatrixSoA, CVector, NullspaceWorkspace,
    Subspace, SubspaceWorkspace, VecPool,
};

/// A receiver of an *ongoing* transmission that must be protected.
#[derive(Debug, Clone)]
pub struct ProtectedReceiver {
    /// The forward channel from the joining transmitter to this receiver
    /// (`N × M`), as the transmitter believes it (reciprocity + hardware
    /// error applied by the caller).
    pub channel: CMatrix,
    /// The receiver's unwanted space `U` (ambient `N`): the directions it
    /// already discards. The zero subspace means every dimension is
    /// wanted, i.e. the transmitter must null (Claim 3.1).
    pub unwanted: Subspace,
}

impl ProtectedReceiver {
    /// A receiver with no spare dimensions — pure nulling target.
    pub fn nulling(channel: CMatrix) -> Self {
        let n = channel.rows();
        ProtectedReceiver {
            channel,
            unwanted: Subspace::zero(n),
        }
    }

    /// A receiver with an advertised unwanted space — alignment target.
    pub fn aligning(channel: CMatrix, unwanted: Subspace) -> Self {
        assert_eq!(
            unwanted.ambient_dim(),
            channel.rows(),
            "unwanted space ambient must equal receiver antennas"
        );
        ProtectedReceiver { channel, unwanted }
    }

    /// Borrowed view of this receiver.
    pub fn as_ref(&self) -> ProtectedReceiverRef<'_> {
        ProtectedReceiverRef {
            channel: &self.channel,
            unwanted: &self.unwanted,
        }
    }

    /// The number of independent linear constraints this receiver imposes
    /// (its wanted-stream count `n = N − dim U`).
    pub fn n_constraints(&self) -> usize {
        self.as_ref().n_constraints()
    }

    /// The constraint rows `U^⊥ H` of Eq. 6 (or `H` itself for nulling —
    /// Eq. 5 — since `U^⊥ = I` when `U` is empty).
    pub fn constraint_rows(&self) -> CMatrix {
        self.as_ref().constraint_rows()
    }
}

/// Borrowed view of a protected receiver — the hot simulation path
/// builds these per subcarrier without cloning channel matrices or
/// subspaces.
#[derive(Debug, Clone, Copy)]
pub struct ProtectedReceiverRef<'a> {
    /// The believed forward channel (`N × M`).
    pub channel: &'a CMatrix,
    /// The receiver's unwanted space `U` (ambient `N`).
    pub unwanted: &'a Subspace,
}

impl ProtectedReceiverRef<'_> {
    /// The number of independent linear constraints this receiver imposes
    /// (its wanted-stream count `n = N − dim U`).
    pub fn n_constraints(&self) -> usize {
        self.channel.rows() - self.unwanted.dim()
    }

    /// The constraint rows `U^⊥ H` of Eq. 6 (or `H` itself for nulling —
    /// Eq. 5 — since `U^⊥ = I` when `U` is empty).
    pub fn constraint_rows(&self) -> CMatrix {
        if self.unwanted.is_zero() {
            self.channel.clone()
        } else {
            let u_perp = self.unwanted.complement();
            &u_perp.row_operator() * self.channel
        }
    }
}

/// One of the joining transmitter's *own* receivers and the streams
/// destined to it.
#[derive(Debug, Clone)]
pub struct OwnReceiver {
    /// Forward channel to this receiver (`N × M`).
    pub channel: CMatrix,
    /// Streams destined to this receiver.
    pub n_streams: usize,
    /// The receiver's unwanted space, used to protect it from the
    /// transmitter's streams destined to *other* receivers.
    pub unwanted: Subspace,
}

impl OwnReceiver {
    /// Borrowed view of this receiver.
    pub fn as_ref(&self) -> OwnReceiverRef<'_> {
        OwnReceiverRef {
            channel: &self.channel,
            n_streams: self.n_streams,
            unwanted: &self.unwanted,
        }
    }
}

/// Borrowed view of an own receiver (see [`ProtectedReceiverRef`]).
#[derive(Debug, Clone, Copy)]
pub struct OwnReceiverRef<'a> {
    /// Forward channel to this receiver (`N × M`).
    pub channel: &'a CMatrix,
    /// Streams destined to this receiver.
    pub n_streams: usize,
    /// The receiver's unwanted space.
    pub unwanted: &'a Subspace,
}

/// Errors from precoding computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrecoderError {
    /// The constraint set leaves no usable degrees of freedom
    /// (`K >= M`): the transmitter cannot join.
    NoDegreesOfFreedom,
    /// A receiver was asked for more streams than the null space allows.
    TooManyStreams {
        /// Streams requested.
        requested: usize,
        /// Streams available.
        available: usize,
    },
}

impl std::fmt::Display for PrecoderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecoderError::NoDegreesOfFreedom => {
                write!(f, "no degrees of freedom left for joining")
            }
            PrecoderError::TooManyStreams {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} streams but only {available} fit the constraints"
            ),
        }
    }
}

impl std::error::Error for PrecoderError {}

/// The computed pre-coding for one subcarrier: `precoders[i]` is the
/// `M`-vector for stream `i`, streams ordered receiver-by-receiver in the
/// order given to [`compute_precoders`].
#[derive(Debug, Clone)]
pub struct Precoding {
    /// One unit-norm pre-coding vector per stream (scaled so total
    /// transmit power across streams is 1).
    pub vectors: Vec<CVector>,
    /// Which own-receiver each stream belongs to.
    pub stream_owner: Vec<usize>,
}

/// Maximum number of streams an `m_antennas` transmitter can add on top
/// of `k_ongoing` ongoing streams (Claim 3.2: `m = M − K`).
pub fn max_joinable_streams(m_antennas: usize, k_ongoing: usize) -> usize {
    m_antennas.saturating_sub(k_ongoing)
}

/// Computes pre-coding vectors per Claim 3.5 / Eq. 7 for one subcarrier.
///
/// `m_antennas` is the joining transmitter's antenna count; `protected`
/// are the receivers of ongoing transmissions; `own` are the joiner's
/// receivers with their stream counts. Returns an error if the constraint
/// set leaves fewer dimensions than requested.
pub fn compute_precoders(
    m_antennas: usize,
    protected: &[ProtectedReceiver],
    own: &[OwnReceiver],
) -> Result<Precoding, PrecoderError> {
    let protected_refs: Vec<ProtectedReceiverRef> = protected.iter().map(|p| p.as_ref()).collect();
    let own_refs: Vec<OwnReceiverRef> = own.iter().map(|r| r.as_ref()).collect();
    compute_precoders_ref(m_antennas, &protected_refs, &own_refs)
}

/// Borrowed-input form of [`compute_precoders`] — identical arithmetic,
/// no cloning of the callers' channel matrices and subspaces. The
/// simulator's hot path builds the views per subcarrier directly against
/// its cached channels.
pub fn compute_precoders_ref(
    m_antennas: usize,
    protected: &[ProtectedReceiverRef],
    own: &[OwnReceiverRef],
) -> Result<Precoding, PrecoderError> {
    // Shared constraints: every ongoing receiver constrains every stream.
    let mut shared = CMatrix::zeros(0, m_antennas);
    for p in protected {
        assert_eq!(
            p.channel.cols(),
            m_antennas,
            "protected channel columns must equal tx antennas"
        );
        shared = shared.vstack(&p.constraint_rows());
    }
    let k: usize = protected.iter().map(|p| p.n_constraints()).sum();
    if k >= m_antennas {
        return Err(PrecoderError::NoDegreesOfFreedom);
    }

    let total_streams: usize = own.iter().map(|r| r.n_streams).sum();
    let mut vectors = Vec::with_capacity(total_streams);
    let mut stream_owner = Vec::with_capacity(total_streams);

    for (r_idx, r) in own.iter().enumerate() {
        if r.n_streams == 0 {
            continue;
        }
        assert_eq!(
            r.channel.cols(),
            m_antennas,
            "own channel columns must equal tx antennas"
        );
        // Per-stream constraints: the shared rows plus alignment into the
        // unwanted space of every *other* own receiver (Claim 3.5's lower
        // block).
        let mut rows = shared.clone();
        for (o_idx, other) in own.iter().enumerate() {
            if o_idx == r_idx {
                continue;
            }
            let pr = ProtectedReceiverRef {
                channel: other.channel,
                unwanted: other.unwanted,
            };
            rows = rows.vstack(&pr.constraint_rows());
        }
        let basis = null_space(&rows);
        if basis.len() < r.n_streams {
            return Err(PrecoderError::TooManyStreams {
                requested: r.n_streams,
                available: basis.len(),
            });
        }
        for i in 0..r.n_streams {
            vectors.push(basis[i].clone());
            stream_owner.push(r_idx);
        }
    }

    // Power normalization: unit total transmit power split evenly across
    // streams (each basis vector is already unit-norm).
    if !vectors.is_empty() {
        let scale = 1.0 / (vectors.len() as f64).sqrt();
        for v in vectors.iter_mut() {
            *v = v.scale_re(scale);
        }
    }

    Ok(Precoding {
        vectors,
        stream_owner,
    })
}

/// Split-storage view of a protected receiver: the channel comes straight
/// from the cache's structure-of-arrays tables, the unwanted space from
/// the engine's pooled round state.
#[derive(Debug, Clone, Copy)]
pub struct ProtectedReceiverSoARef<'a> {
    /// The believed forward channel (`N × M`), split storage.
    pub channel: &'a CMatrixSoA,
    /// The receiver's unwanted space `U` (ambient `N`).
    pub unwanted: &'a Subspace,
}

impl ProtectedReceiverSoARef<'_> {
    /// The number of independent linear constraints this receiver imposes
    /// (its wanted-stream count `n = N − dim U`).
    pub fn n_constraints(&self) -> usize {
        self.channel.rows() - self.unwanted.dim()
    }
}

/// Split-storage view of an own receiver (see [`ProtectedReceiverSoARef`]).
#[derive(Debug, Clone, Copy)]
pub struct OwnReceiverSoARef<'a> {
    /// Forward channel to this receiver (`N × M`), split storage.
    pub channel: &'a CMatrixSoA,
    /// Streams destined to this receiver.
    pub n_streams: usize,
    /// The receiver's unwanted space.
    pub unwanted: &'a Subspace,
}

/// Reusable buffers for [`compute_precoders_into`] — one per engine,
/// holding the high-water allocations of every per-subcarrier precoder
/// solve of a run.
#[derive(Debug, Clone, Default)]
pub struct PrecoderWorkspace {
    shared: CMatrixSoA,
    rows: CMatrixSoA,
    cons: CMatrixSoA,
    rowop: CMatrixSoA,
    uperp: Subspace,
    sub_ws: SubspaceWorkspace,
    ns_ws: NullspaceWorkspace,
    basis: Vec<CVector>,
    /// The per-stream pre-coding vectors after a successful call, streams
    /// ordered receiver-by-receiver exactly like [`Precoding::vectors`].
    pub out: VecPool<CVector>,
}

/// The constraint rows `U^⊥ H` (or `H` for nulling) into a pooled buffer,
/// through the split-storage kernels: `complement_into`, the conjugated
/// row operator and `mul_into` each replicate their interleaved sibling
/// operation for operation, so the rows are bit-identical to
/// [`ProtectedReceiverRef::constraint_rows`].
fn constraint_rows_into_soa(
    channel: &CMatrixSoA,
    unwanted: &Subspace,
    out: &mut CMatrixSoA,
    uperp: &mut Subspace,
    sub_ws: &mut SubspaceWorkspace,
    rowop: &mut CMatrixSoA,
) {
    if unwanted.is_zero() {
        out.assign_from(channel);
    } else {
        unwanted.complement_into(uperp, sub_ws);
        uperp.row_operator_into(rowop);
        mul_into(rowop, channel, out);
    }
}

/// Pooled split-storage form of [`compute_precoders_ref`]: the identical
/// constraint assembly, null-space solve and power normalization, with
/// every intermediate written into reusable `ws` buffers and the vectors
/// left in `ws.out`. Seeded results are bit-for-bit the allocating
/// path's. (`stream_owner` bookkeeping is omitted — the engine's hot path
/// tracks ownership through its allocation list.)
///
/// # Errors
/// Exactly as [`compute_precoders_ref`].
pub fn compute_precoders_into(
    m_antennas: usize,
    protected: &[ProtectedReceiverSoARef],
    own: &[OwnReceiverSoARef],
    ws: &mut PrecoderWorkspace,
) -> Result<(), PrecoderError> {
    compute_precoders_into_with(
        m_antennas,
        protected.len(),
        |i| protected[i],
        own.len(),
        |i| own[i],
        ws,
    )
}

/// Accessor-closure form of [`compute_precoders_into`]: the caller hands
/// index→view closures instead of slices, so the engine can feed its
/// flat pooled storage (believed channels in `[receiver × bin]` arrays,
/// unwanted spaces in pooled round state) without materializing a
/// `Vec` of views per solve. Identical constraint assembly and solve
/// order — views are fetched by ascending index exactly as the slice
/// form iterates — so results stay bit-for-bit.
///
/// # Errors
/// Exactly as [`compute_precoders_ref`].
pub fn compute_precoders_into_with<'a>(
    m_antennas: usize,
    n_protected: usize,
    protected: impl Fn(usize) -> ProtectedReceiverSoARef<'a>,
    n_own: usize,
    own: impl Fn(usize) -> OwnReceiverSoARef<'a>,
    ws: &mut PrecoderWorkspace,
) -> Result<(), PrecoderError> {
    ws.out.clear();
    // Shared constraints: every ongoing receiver constrains every stream.
    ws.shared.reset(0, m_antennas);
    let mut k = 0usize;
    for p_idx in 0..n_protected {
        let p = protected(p_idx);
        assert_eq!(
            p.channel.cols(),
            m_antennas,
            "protected channel columns must equal tx antennas"
        );
        constraint_rows_into_soa(
            p.channel,
            p.unwanted,
            &mut ws.cons,
            &mut ws.uperp,
            &mut ws.sub_ws,
            &mut ws.rowop,
        );
        ws.shared.append_rows(&ws.cons);
        k += p.n_constraints();
    }
    if k >= m_antennas {
        return Err(PrecoderError::NoDegreesOfFreedom);
    }

    for r_idx in 0..n_own {
        let r = own(r_idx);
        if r.n_streams == 0 {
            continue;
        }
        assert_eq!(
            r.channel.cols(),
            m_antennas,
            "own channel columns must equal tx antennas"
        );
        // Per-stream constraints: the shared rows plus alignment into the
        // unwanted space of every *other* own receiver (Claim 3.5's lower
        // block).
        ws.rows.assign_from(&ws.shared);
        for o_idx in 0..n_own {
            if o_idx == r_idx {
                continue;
            }
            let other = own(o_idx);
            constraint_rows_into_soa(
                other.channel,
                other.unwanted,
                &mut ws.cons,
                &mut ws.uperp,
                &mut ws.sub_ws,
                &mut ws.rowop,
            );
            ws.rows.append_rows(&ws.cons);
        }
        let available = null_space_into(&ws.rows, &mut ws.ns_ws, &mut ws.basis);
        if available < r.n_streams {
            return Err(PrecoderError::TooManyStreams {
                requested: r.n_streams,
                available,
            });
        }
        for i in 0..r.n_streams {
            ws.out.push_slot().copy_from(&ws.basis[i]);
        }
    }

    // Power normalization: unit total transmit power split evenly across
    // streams (each basis vector is already unit-norm).
    if !ws.out.is_empty() {
        let scale = 1.0 / (ws.out.len() as f64).sqrt();
        for v in ws.out.as_mut_slice() {
            v.scale_re_in_place(scale);
        }
    }
    Ok(())
}

/// Residual interference power (linear, relative to a unit-power stream)
/// that the pre-coding vector `v` leaks into the *wanted* space of a
/// protected receiver whose true channel is `h_true`. This is the
/// verification metric for the paper's Fig. 11: with perfect channel
/// knowledge it is ~0; with hardware error it sits ~25 dB down.
pub fn residual_interference(h_true: &CMatrix, unwanted: &Subspace, v: &CVector) -> f64 {
    let arriving = h_true.mul_vec(v);
    if unwanted.is_zero() {
        arriving.norm_sqr()
    } else {
        // Only the component outside the unwanted space harms the receiver.
        unwanted.reject(&arriving).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::{c64, Complex64};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_channel(rows: usize, cols: usize, rng: &mut StdRng) -> CMatrix {
        let data: Vec<Complex64> = (0..rows * cols)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        CMatrix::from_vec(rows, cols, data)
    }

    const NULL_TOL: f64 = 1e-10;

    /// Paper Fig. 2: a 2-antenna tx nulls at the single-antenna rx1 and
    /// still delivers one stream to its own rx2.
    #[test]
    fn fig2_two_antenna_join() {
        let mut rng = StdRng::seed_from_u64(1);
        let h_to_rx1 = random_channel(1, 2, &mut rng); // 1×2
        let h_to_rx2 = random_channel(2, 2, &mut rng); // 2×2
        let p = compute_precoders(
            2,
            &[ProtectedReceiver::nulling(h_to_rx1.clone())],
            &[OwnReceiver {
                channel: h_to_rx2.clone(),
                n_streams: 1,
                unwanted: Subspace::zero(2),
            }],
        )
        .unwrap();
        assert_eq!(p.vectors.len(), 1);
        // Perfect null at rx1.
        let leak = residual_interference(&h_to_rx1, &Subspace::zero(1), &p.vectors[0]);
        assert!(leak < NULL_TOL, "leak {leak}");
        // Non-zero delivery at rx2.
        let delivered = h_to_rx2.mul_vec(&p.vectors[0]).norm_sqr();
        assert!(delivered > 1e-3, "delivered {delivered}");
    }

    /// Paper §2's impossibility result: a 3-antenna tx cannot null at
    /// three receive antennas (Eqs. 2a–2c) — but *can* join by aligning
    /// at the 2-antenna receiver (Eq. 4) and nulling only at rx1.
    #[test]
    fn fig3_alignment_rescues_third_pair() {
        let mut rng = StdRng::seed_from_u64(2);
        let h_to_rx1 = random_channel(1, 3, &mut rng);
        let h_to_rx2 = random_channel(2, 3, &mut rng);
        let h_to_rx3 = random_channel(3, 3, &mut rng);

        // Nulling-only at both receivers: 1 + 2 = 3 constraints on 3
        // antennas -> no DoF.
        let err = compute_precoders(
            3,
            &[
                ProtectedReceiver::nulling(h_to_rx1.clone()),
                ProtectedReceiver::nulling(h_to_rx2.clone()),
            ],
            &[OwnReceiver {
                channel: h_to_rx3.clone(),
                n_streams: 1,
                unwanted: Subspace::zero(3),
            }],
        );
        assert_eq!(err.unwrap_err(), PrecoderError::NoDegreesOfFreedom);

        // With alignment at rx2 (its unwanted space = the direction tx1's
        // interference arrives from), the join succeeds.
        let h_tx1_at_rx2 = random_channel(2, 1, &mut rng); // tx1 -> rx2
        let unwanted_rx2 = Subspace::span(2, &[h_tx1_at_rx2.col(0)]);
        let p = compute_precoders(
            3,
            &[
                ProtectedReceiver::nulling(h_to_rx1.clone()),
                ProtectedReceiver::aligning(h_to_rx2.clone(), unwanted_rx2.clone()),
            ],
            &[OwnReceiver {
                channel: h_to_rx3.clone(),
                n_streams: 1,
                unwanted: Subspace::zero(3),
            }],
        )
        .unwrap();
        assert_eq!(p.vectors.len(), 1);
        let v = &p.vectors[0];
        // Null at rx1.
        assert!(h_to_rx1.mul_vec(v).norm_sqr() < NULL_TOL);
        // At rx2 the arriving signal lies inside the unwanted space:
        // aligned with tx1's interference (Eq. 4).
        let arriving = h_to_rx2.mul_vec(v);
        assert!(
            unwanted_rx2.contains(&arriving, 1e-8),
            "arrival not aligned: {arriving:?}"
        );
        // Residual in the wanted space is zero.
        assert!(residual_interference(&h_to_rx2, &unwanted_rx2, v) < NULL_TOL);
        // Still delivers to rx3.
        assert!(h_to_rx3.mul_vec(v).norm_sqr() > 1e-3);
    }

    /// Claim 3.2: m = M − K over a sweep of antenna/stream counts.
    #[test]
    fn claim_3_2_stream_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        for m_ant in 1..=4usize {
            for k in 0..=m_ant {
                // Build k constraints from single-antenna nulling targets.
                let protected: Vec<ProtectedReceiver> = (0..k)
                    .map(|_| ProtectedReceiver::nulling(random_channel(1, m_ant, &mut rng)))
                    .collect();
                assert_eq!(max_joinable_streams(m_ant, k), m_ant - k);
                let want = m_ant - k;
                let result = compute_precoders(
                    m_ant,
                    &protected,
                    &[OwnReceiver {
                        channel: random_channel(m_ant, m_ant, &mut rng),
                        n_streams: want,
                        unwanted: Subspace::zero(m_ant),
                    }],
                );
                if want == 0 {
                    assert!(matches!(result, Err(PrecoderError::NoDegreesOfFreedom)));
                } else {
                    let p = result.unwrap();
                    assert_eq!(p.vectors.len(), want, "M={m_ant} K={k}");
                    // Asking for one more must fail.
                    let too_many = compute_precoders(
                        m_ant,
                        &protected,
                        &[OwnReceiver {
                            channel: random_channel(m_ant, m_ant, &mut rng),
                            n_streams: want + 1,
                            unwanted: Subspace::zero(m_ant),
                        }],
                    );
                    assert!(too_many.is_err());
                }
            }
        }
    }

    /// Fig. 4 / Claim 3.5: a 3-antenna AP serves two 2-antenna clients one
    /// stream each while protecting a 2-antenna AP receiving from a
    /// single-antenna client.
    #[test]
    fn fig4_multi_receiver_downlink() {
        let mut rng = StdRng::seed_from_u64(4);
        // Ongoing: c1 (1 ant) -> AP1 (2 ant). AP1's unwanted space is
        // whatever is orthogonal to c1's arrival direction.
        let h_c1_ap1 = random_channel(2, 1, &mut rng);
        let wanted_dir = h_c1_ap1.col(0);
        let unwanted_ap1 = Subspace::span(2, std::slice::from_ref(&wanted_dir)).complement();
        // Joining AP2 (3 ant) channels.
        let h_ap2_ap1 = random_channel(2, 3, &mut rng);
        let h_ap2_c2 = random_channel(2, 3, &mut rng);
        let h_ap2_c3 = random_channel(2, 3, &mut rng);
        // Clients' unwanted spaces: the direction c1's interference
        // arrives from at each client.
        let h_c1_c2 = random_channel(2, 1, &mut rng);
        let h_c1_c3 = random_channel(2, 1, &mut rng);
        let u_c2 = Subspace::span(2, &[h_c1_c2.col(0)]);
        let u_c3 = Subspace::span(2, &[h_c1_c3.col(0)]);

        let p = compute_precoders(
            3,
            &[ProtectedReceiver::aligning(
                h_ap2_ap1.clone(),
                unwanted_ap1.clone(),
            )],
            &[
                OwnReceiver {
                    channel: h_ap2_c2.clone(),
                    n_streams: 1,
                    unwanted: u_c2.clone(),
                },
                OwnReceiver {
                    channel: h_ap2_c3.clone(),
                    n_streams: 1,
                    unwanted: u_c3.clone(),
                },
            ],
        )
        .unwrap();
        assert_eq!(p.vectors.len(), 2);
        assert_eq!(p.stream_owner, vec![0, 1]);
        let (v2, v3) = (&p.vectors[0], &p.vectors[1]);

        // Both streams leave AP1's wanted direction untouched.
        for v in [v2, v3] {
            let res = residual_interference(&h_ap2_ap1, &unwanted_ap1, v);
            assert!(res < NULL_TOL, "AP1 residual {res}");
        }
        // c2's stream lands in c3's unwanted space and vice versa.
        assert!(u_c3.contains(&h_ap2_c3.mul_vec(v2), 1e-8));
        assert!(u_c2.contains(&h_ap2_c2.mul_vec(v3), 1e-8));
        // Each client still hears its own stream outside its unwanted
        // space (decodable).
        let c2_signal = u_c2.reject(&h_ap2_c2.mul_vec(v2)).norm_sqr();
        let c3_signal = u_c3.reject(&h_ap2_c3.mul_vec(v3)).norm_sqr();
        assert!(c2_signal > 1e-4, "c2 signal {c2_signal}");
        assert!(c3_signal > 1e-4, "c3 signal {c3_signal}");
    }

    /// First winner with zero ongoing streams: precoder degenerates to an
    /// orthonormal basis (free spatial multiplexing).
    #[test]
    fn no_constraints_full_multiplexing() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = random_channel(3, 3, &mut rng);
        let p = compute_precoders(
            3,
            &[],
            &[OwnReceiver {
                channel: h,
                n_streams: 3,
                unwanted: Subspace::zero(3),
            }],
        )
        .unwrap();
        assert_eq!(p.vectors.len(), 3);
        // Total power across streams is 1.
        let total: f64 = p.vectors.iter().map(|v| v.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    /// The pooled split-storage precoder is bit-for-bit the allocating
    /// path across random constraint mixes, including both error kinds.
    #[test]
    fn pooled_precoder_matches_allocating_bitwise() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ws = PrecoderWorkspace::default();
        for trial in 0..150 {
            let m_ant = rng.gen_range(1..=4usize);
            let n_protected = rng.gen_range(0..=2usize);
            let n_own = rng.gen_range(1..=2usize);
            let protected: Vec<ProtectedReceiver> = (0..n_protected)
                .map(|_| {
                    let n_rx = rng.gen_range(1..=3usize);
                    let ch = random_channel(n_rx, m_ant, &mut rng);
                    if rng.gen_bool(0.5) && n_rx > 1 {
                        let dir = random_channel(n_rx, 1, &mut rng).col(0);
                        ProtectedReceiver::aligning(ch, Subspace::span(n_rx, &[dir]))
                    } else {
                        ProtectedReceiver::nulling(ch)
                    }
                })
                .collect();
            let own: Vec<OwnReceiver> = (0..n_own)
                .map(|_| {
                    let n_rx = rng.gen_range(1..=3usize);
                    OwnReceiver {
                        channel: random_channel(n_rx, m_ant, &mut rng),
                        n_streams: rng.gen_range(0..=2usize),
                        unwanted: Subspace::zero(n_rx),
                    }
                })
                .collect();
            let reference = compute_precoders(m_ant, &protected, &own);

            let soa_prot: Vec<(CMatrixSoA, Subspace)> = protected
                .iter()
                .map(|p| (CMatrixSoA::from_aos(&p.channel), p.unwanted.clone()))
                .collect();
            let soa_own: Vec<(CMatrixSoA, usize, Subspace)> = own
                .iter()
                .map(|r| {
                    (
                        CMatrixSoA::from_aos(&r.channel),
                        r.n_streams,
                        r.unwanted.clone(),
                    )
                })
                .collect();
            let prot_refs: Vec<ProtectedReceiverSoARef> = soa_prot
                .iter()
                .map(|(c, u)| ProtectedReceiverSoARef {
                    channel: c,
                    unwanted: u,
                })
                .collect();
            let own_refs: Vec<OwnReceiverSoARef> = soa_own
                .iter()
                .map(|(c, n, u)| OwnReceiverSoARef {
                    channel: c,
                    n_streams: *n,
                    unwanted: u,
                })
                .collect();
            let pooled = compute_precoders_into(m_ant, &prot_refs, &own_refs, &mut ws);
            match (&reference, &pooled) {
                (Ok(p), Ok(())) => {
                    assert_eq!(p.vectors.len(), ws.out.len(), "trial {trial}");
                    for (a, b) in p.vectors.iter().zip(ws.out.iter()) {
                        assert_eq!(a.len(), b.len());
                        for (x, y) in a.iter().zip(b.iter()) {
                            assert_eq!(x.re.to_bits(), y.re.to_bits(), "trial {trial}");
                            assert_eq!(x.im.to_bits(), y.im.to_bits(), "trial {trial}");
                        }
                    }
                }
                (Err(e), Err(f)) => assert_eq!(e, f, "trial {trial}"),
                other => panic!("trial {trial}: outcome mismatch {other:?}"),
            }
        }
    }

    /// Residual metric is monotone in channel-knowledge error.
    #[test]
    fn residual_grows_with_channel_error() {
        let mut rng = StdRng::seed_from_u64(6);
        let h_true = random_channel(1, 2, &mut rng);
        let own = random_channel(2, 2, &mut rng);
        let mut last_resid = -1.0;
        for err in [0.0, 0.01, 0.05, 0.2] {
            // The transmitter precodes against a perturbed belief.
            let mut h_believed = h_true.clone();
            h_believed[(0, 0)] += c64(err, -err);
            let p = compute_precoders(
                2,
                &[ProtectedReceiver::nulling(h_believed)],
                &[OwnReceiver {
                    channel: own.clone(),
                    n_streams: 1,
                    unwanted: Subspace::zero(2),
                }],
            )
            .unwrap();
            let resid = residual_interference(&h_true, &Subspace::zero(1), &p.vectors[0]);
            assert!(resid >= last_resid - 1e-12, "residual not monotone");
            last_resid = resid;
        }
        assert!(last_resid > 1e-4, "large error should leak measurably");
    }
}
