//! Light-weight handshake codec: differential alignment-space compression
//! (paper §3.5).
//!
//! The ACK header (n+'s light-weight CTS) must broadcast the receiver's
//! unwanted space `U` for **each** of the 802.11's OFDM subcarriers so
//! that joiners can align into it. Sent raw this would dwarf the header;
//! the paper leverages that channels vary slowly across subcarriers and
//! sends `U` of the first subcarrier plus per-subcarrier differences
//! `U_i − U_{i−1}`, compressing the whole space into about three OFDM
//! symbols.
//!
//! Two codecs share the wire format (dispatched by a header flag):
//!
//! * the **CP¹ codec** for the dominant advertisement — a 1-dimensional
//!   unwanted space at a 2-antenna receiver is a point on the complex
//!   projective line, i.e. two real angles; nibble-sized angle
//!   differences plus an escape bitmask reach the paper's "about three
//!   OFDM symbols";
//! * the **generic codec** for higher-order spaces, with two details that
//!   make differencing effective: the encoder *phase-aligns* each
//!   subcarrier's basis against the previous one (a subspace has no
//!   unique basis — without alignment the differences would reflect
//!   arbitrary basis rotation, not channel variation), and each
//!   subcarrier picks the cheapest of three escape levels (4-bit, 8-bit,
//!   16-bit fixed point per real component).
//!
//! Quantization error in either codec sits near −35 dB in subspace
//! (projector) distance — far below the 25–27 dB hardware cancellation
//! depth it needs to support.

use nplus_linalg::{c64, CVector, Subspace};
use nplus_phy::params::occupied_subcarrier_indices;
use nplus_phy::rates::Mcs;

/// Quantization scale: components live in [−1, 1] (orthonormal bases),
/// mapped to i16 full-scale.
const FULL_SCALE: f64 = 32767.0;
/// Differences are coded at 1/256 resolution.
const DIFF_STEP: f64 = 1.0 / 256.0;

/// Escape levels per subcarrier.
const LEVEL_DIFF4: u8 = 0;
const LEVEL_DIFF8: u8 = 1;
const LEVEL_FULL: u8 = 2;

/// Errors from decoding an alignment blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob is truncated or structurally invalid.
    Malformed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed alignment blob")
    }
}

impl std::error::Error for CodecError {}

fn phase_align(basis: &[CVector], reference: &[CVector]) -> Vec<CVector> {
    basis
        .iter()
        .zip(reference)
        .map(|(b, r)| {
            let ip = b.dot(r);
            if ip.abs() > 1e-12 {
                // Rotate so <b', r> is real-positive: minimizes |b' − r|.
                b.scale(ip.conj().scale(1.0 / ip.abs()))
            } else {
                b.clone()
            }
        })
        .collect()
}

fn components(basis: &[CVector]) -> Vec<f64> {
    let mut out = Vec::new();
    for v in basis {
        for z in v.iter() {
            out.push(z.re);
            out.push(z.im);
        }
    }
    out
}

fn from_components(vals: &[f64], n_antennas: usize, dim: usize) -> Vec<CVector> {
    let mut basis = Vec::with_capacity(dim);
    let mut it = vals.iter();
    for _ in 0..dim {
        let mut v = CVector::zeros(n_antennas);
        for a in 0..n_antennas {
            let re = *it.next().unwrap();
            let im = *it.next().unwrap();
            v[a] = c64(re, im);
        }
        basis.push(v);
    }
    basis
}

/// Encodes the per-subcarrier unwanted spaces into a compact blob.
///
/// `spaces` holds one subspace per *occupied* subcarrier (52 entries in
/// transmit order), all with the same ambient dimension and the same
/// subspace dimension (the receiver's spare-DoF count). A zero-dimension
/// space encodes to a minimal blob.
pub fn encode_alignment_space(spaces: &[Subspace]) -> Vec<u8> {
    assert!(!spaces.is_empty(), "no subspaces to encode");
    let n_ant = spaces[0].ambient_dim();
    let dim = spaces[0].dim();
    for s in spaces {
        assert_eq!(s.ambient_dim(), n_ant, "inconsistent ambient dims");
        assert_eq!(s.dim(), dim, "inconsistent subspace dims");
    }
    // The dominant advertisement in heterogeneous LANs is a 1-dimensional
    // unwanted space at a 2-antenna receiver. That subspace is a point on
    // the complex projective line — two real angles — for which the
    // dedicated codec below is ~4x more compact than the generic one.
    // This is what gets the alignment space down to the paper's "about
    // three OFDM symbols".
    if n_ant == 2 && dim == 1 {
        return encode_cp1(spaces);
    }
    let mut out = Vec::new();
    out.push(((n_ant as u8) << 4) | dim as u8);
    out.push(spaces.len() as u8);
    if dim == 0 {
        return out;
    }

    // First subcarrier: full 16-bit components.
    let mut prev: Vec<CVector> = spaces[0].basis().to_vec();
    for c in components(&prev) {
        let q = (c * FULL_SCALE).round().clamp(-32768.0, 32767.0) as i16;
        out.extend_from_slice(&q.to_le_bytes());
    }

    // Subsequent subcarriers: best escape level.
    for s in &spaces[1..] {
        let aligned = phase_align(s.basis(), &prev);
        let cur = components(&aligned);
        let ref_c = components(&prev);
        let diffs: Vec<f64> = cur.iter().zip(&ref_c).map(|(a, b)| a - b).collect();
        let max_diff = diffs.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        let steps: Vec<i32> = diffs
            .iter()
            .map(|d| (d / DIFF_STEP).round() as i32)
            .collect();
        if max_diff <= 7.0 * DIFF_STEP {
            out.push(LEVEL_DIFF4);
            // Pack two 4-bit signed values per byte.
            for pair in steps.chunks(2) {
                let lo = (pair[0].clamp(-8, 7) & 0xF) as u8;
                let hi = (pair.get(1).copied().unwrap_or(0).clamp(-8, 7) & 0xF) as u8;
                out.push(lo | (hi << 4));
            }
        } else if max_diff <= 127.0 * DIFF_STEP {
            out.push(LEVEL_DIFF8);
            for &s in &steps {
                out.push((s.clamp(-128, 127) as i8) as u8);
            }
        } else {
            out.push(LEVEL_FULL);
            for c in &cur {
                let q = (c * FULL_SCALE).round().clamp(-32768.0, 32767.0) as i16;
                out.extend_from_slice(&q.to_le_bytes());
            }
        }
        // The decoder reconstructs from quantized values; mirror that here
        // so differences never accumulate error.
        let quantized = reconstruct_quantized(&cur, &ref_c, max_diff);
        prev = from_components(&quantized, n_ant, dim);
    }
    out
}

fn reconstruct_quantized(cur: &[f64], prev: &[f64], max_diff: f64) -> Vec<f64> {
    if max_diff <= 127.0 * DIFF_STEP {
        cur.iter()
            .zip(prev)
            .map(|(c, p)| {
                let step = ((c - p) / DIFF_STEP).round();
                let clamped = if max_diff <= 7.0 * DIFF_STEP {
                    step.clamp(-8.0, 7.0)
                } else {
                    step.clamp(-128.0, 127.0)
                };
                p + clamped * DIFF_STEP
            })
            .collect()
    } else {
        cur.iter()
            .map(|c| (c * FULL_SCALE).round().clamp(-32768.0, 32767.0) / FULL_SCALE)
            .collect()
    }
}

/// CP¹ codec: a 1-dimensional subspace of C² is `span{(cos θ, sin θ e^{iφ})}`
/// with θ ∈ [0, π/2] and φ ∈ [0, 2π). Eight bits per angle at full
/// resolution; smooth channels need only a signed nibble pair per
/// subsequent subcarrier, with a bitmask marking full-resolution escapes.
fn angles_of(space: &Subspace) -> (f64, f64) {
    let v = &space.basis()[0];
    let a = v[0];
    let b = v[1];
    let theta = b.abs().atan2(a.abs());
    let phi = if a.abs() > 1e-12 {
        (b * a.conj()).arg()
    } else {
        0.0
    };
    let phi = if phi < 0.0 {
        phi + 2.0 * std::f64::consts::PI
    } else {
        phi
    };
    (theta, phi)
}

fn space_of_angles(theta: f64, phi: f64) -> Subspace {
    let v = CVector::from_vec(vec![
        c64(theta.cos(), 0.0),
        nplus_linalg::Complex64::from_polar(theta.sin(), phi),
    ]);
    Subspace::span(2, &[v])
}

const CP1_FLAG: u8 = 0x80;

fn quantize_cp1(theta: f64, phi: f64) -> (u8, u8) {
    let qt = (theta / std::f64::consts::FRAC_PI_2 * 255.0)
        .round()
        .clamp(0.0, 255.0) as u8;
    let qp = ((phi / (2.0 * std::f64::consts::PI) * 256.0).round() as i64).rem_euclid(256) as u8;
    (qt, qp)
}

fn encode_cp1(spaces: &[Subspace]) -> Vec<u8> {
    let n_sc = spaces.len();
    assert!(n_sc <= 127, "CP1 codec supports up to 127 subcarriers");
    let mut out = Vec::with_capacity(4 + 2 * n_sc);
    out.push(0x21); // n_ant = 2, dim = 1
    out.push(CP1_FLAG | n_sc as u8);
    let (mut pt, mut pp) = quantize_cp1(angles_of(&spaces[0]).0, angles_of(&spaces[0]).1);
    out.push(pt);
    out.push(pp);
    // Escape bitmask for subcarriers 1..n_sc.
    let mask_pos = out.len();
    out.extend(std::iter::repeat_n(0u8, (n_sc - 1).div_ceil(8)));
    for (i, s) in spaces[1..].iter().enumerate() {
        let (theta, phi) = angles_of(s);
        let (qt, qp) = quantize_cp1(theta, phi);
        // Differences in full-resolution units; φ wraps circularly.
        let dt = qt as i32 - pt as i32;
        let dp = ((qp as i32 - pp as i32 + 384) % 256) - 128;
        // Nibbles carry diff/2, covering ±14 units.
        let (nt, np) = (
            (dt as f64 / 2.0).round() as i32,
            (dp as f64 / 2.0).round() as i32,
        );
        if nt.abs() <= 7 && np.abs() <= 7 {
            out.push(((nt & 0xF) as u8) | (((np & 0xF) as u8) << 4));
            pt = (pt as i32 + 2 * nt).clamp(0, 255) as u8;
            pp = ((pp as i32 + 2 * np).rem_euclid(256)) as u8;
        } else {
            out[mask_pos + i / 8] |= 1 << (i % 8);
            out.push(qt);
            out.push(qp);
            pt = qt;
            pp = qp;
        }
    }
    out
}

fn decode_cp1(blob: &[u8]) -> Result<Vec<Subspace>, CodecError> {
    if blob.len() < 4 {
        return Err(CodecError::Malformed);
    }
    let n_sc = (blob[1] & 0x7F) as usize;
    if n_sc == 0 {
        return Err(CodecError::Malformed);
    }
    let mut pt = blob[2];
    let mut pp = blob[3];
    let mask_len = (n_sc - 1).div_ceil(8);
    if blob.len() < 4 + mask_len {
        return Err(CodecError::Malformed);
    }
    let mask = &blob[4..4 + mask_len];
    let mut pos = 4 + mask_len;
    let to_space = |qt: u8, qp: u8| {
        let theta = qt as f64 / 255.0 * std::f64::consts::FRAC_PI_2;
        let phi = qp as f64 / 256.0 * 2.0 * std::f64::consts::PI;
        space_of_angles(theta, phi)
    };
    let mut spaces = Vec::with_capacity(n_sc);
    spaces.push(to_space(pt, pp));
    for i in 0..n_sc - 1 {
        let full = mask[i / 8] & (1 << (i % 8)) != 0;
        if full {
            if pos + 2 > blob.len() {
                return Err(CodecError::Malformed);
            }
            pt = blob[pos];
            pp = blob[pos + 1];
            pos += 2;
        } else {
            if pos >= blob.len() {
                return Err(CodecError::Malformed);
            }
            let byte = blob[pos];
            pos += 1;
            let nt = (((byte & 0xF) << 4) as i8) >> 4;
            let np = ((byte & 0xF0) as i8) >> 4;
            pt = (pt as i32 + 2 * nt as i32).clamp(0, 255) as u8;
            pp = ((pp as i32 + 2 * np as i32).rem_euclid(256)) as u8;
        }
        spaces.push(to_space(pt, pp));
    }
    if pos != blob.len() {
        return Err(CodecError::Malformed);
    }
    Ok(spaces)
}

/// Decodes an alignment blob back to per-subcarrier subspaces.
pub fn decode_alignment_space(blob: &[u8]) -> Result<Vec<Subspace>, CodecError> {
    if blob.len() < 2 {
        return Err(CodecError::Malformed);
    }
    if blob[0] == 0x21 && blob[1] & CP1_FLAG != 0 {
        return decode_cp1(blob);
    }
    let n_ant = (blob[0] >> 4) as usize;
    let dim = (blob[0] & 0xF) as usize;
    let n_sc = blob[1] as usize;
    if n_ant == 0 || n_sc == 0 || dim > n_ant {
        return Err(CodecError::Malformed);
    }
    if dim == 0 {
        return Ok(vec![Subspace::zero(n_ant); n_sc]);
    }
    let n_comp = dim * n_ant * 2;
    let mut pos = 2usize;
    let read_full = |pos: &mut usize| -> Result<Vec<f64>, CodecError> {
        if *pos + 2 * n_comp > blob.len() {
            return Err(CodecError::Malformed);
        }
        let mut vals = Vec::with_capacity(n_comp);
        for _ in 0..n_comp {
            let q = i16::from_le_bytes([blob[*pos], blob[*pos + 1]]);
            vals.push(q as f64 / FULL_SCALE);
            *pos += 2;
        }
        Ok(vals)
    };

    let mut spaces = Vec::with_capacity(n_sc);
    let mut prev = read_full(&mut pos)?;
    spaces.push(make_space(&prev, n_ant, dim));

    for _ in 1..n_sc {
        if pos >= blob.len() {
            return Err(CodecError::Malformed);
        }
        let level = blob[pos];
        pos += 1;
        let cur: Vec<f64> = match level {
            LEVEL_DIFF4 => {
                let n_bytes = n_comp.div_ceil(2);
                if pos + n_bytes > blob.len() {
                    return Err(CodecError::Malformed);
                }
                let mut steps = Vec::with_capacity(n_comp);
                for i in 0..n_comp {
                    let byte = blob[pos + i / 2];
                    let nib = if i % 2 == 0 { byte & 0xF } else { byte >> 4 };
                    // Sign-extend the 4-bit value.
                    let signed = ((nib << 4) as i8) >> 4;
                    steps.push(signed as f64);
                }
                pos += n_bytes;
                prev.iter()
                    .zip(&steps)
                    .map(|(p, s)| p + s * DIFF_STEP)
                    .collect()
            }
            LEVEL_DIFF8 => {
                if pos + n_comp > blob.len() {
                    return Err(CodecError::Malformed);
                }
                let vals = prev
                    .iter()
                    .enumerate()
                    .map(|(i, p)| p + (blob[pos + i] as i8) as f64 * DIFF_STEP)
                    .collect();
                pos += n_comp;
                vals
            }
            LEVEL_FULL => read_full(&mut pos)?,
            _ => return Err(CodecError::Malformed),
        };
        spaces.push(make_space(&cur, n_ant, dim));
        prev = cur;
    }
    Ok(spaces)
}

fn make_space(vals: &[f64], n_ant: usize, dim: usize) -> Subspace {
    let basis = from_components(vals, n_ant, dim);
    // Quantization slightly de-orthonormalizes the basis; span() cleans
    // it back up.
    Subspace::span(n_ant, &basis)
}

/// Size of the blob in OFDM symbols when sent at the given header MCS —
/// the §3.5 overhead metric ("three OFDM symbols on average").
pub fn blob_symbols(blob_len_bytes: usize, header_mcs: Mcs) -> usize {
    (blob_len_bytes * 8).div_ceil(header_mcs.data_bits_per_symbol())
}

/// The worst-case subspace mismatch between two per-subcarrier space
/// lists: `max_k sin θ_max(U_k, V_k)` measured via projector distance.
pub fn max_space_error(a: &[Subspace], b: &[Subspace]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = &x.projector() - &y.projector();
            d.frobenius_norm()
        })
        .fold(0.0, f64::max)
}

/// Convenience: the number of occupied subcarriers the blob must cover.
pub fn expected_subcarriers() -> usize {
    occupied_subcarrier_indices().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::Complex64;
    use nplus_phy::rates::RATE_TABLE;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Smoothly varying spaces, as real channels produce.
    fn smooth_spaces(n_sc: usize, n_ant: usize, rng: &mut StdRng) -> Vec<Subspace> {
        // A slowly rotating direction vector.
        let base: Vec<Complex64> = (0..n_ant)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let drift: Vec<Complex64> = (0..n_ant)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(0.02))
            .collect();
        (0..n_sc)
            .map(|k| {
                let v: CVector = base
                    .iter()
                    .zip(&drift)
                    .map(|(b, d)| *b + d.scale(k as f64))
                    .collect();
                Subspace::span(n_ant, &[v])
            })
            .collect()
    }

    #[test]
    fn round_trip_smooth_spaces() {
        let mut rng = StdRng::seed_from_u64(1);
        let spaces = smooth_spaces(52, 2, &mut rng);
        let blob = encode_alignment_space(&spaces);
        let decoded = decode_alignment_space(&blob).unwrap();
        assert_eq!(decoded.len(), 52);
        let err = max_space_error(&spaces, &decoded);
        assert!(err < 0.06, "subspace error {err}");
    }

    #[test]
    fn smooth_spaces_compress_well() {
        // The §3.5 claim: differential coding gets the alignment space
        // down to a few OFDM symbols.
        let mut rng = StdRng::seed_from_u64(2);
        let spaces = smooth_spaces(52, 2, &mut rng);
        let blob = encode_alignment_space(&spaces);
        // Raw encoding would be 52 subcarriers × 4 components × 2 bytes
        // = 416 bytes; differential must do much better.
        assert!(
            blob.len() < 170,
            "blob {} bytes — differential coding ineffective",
            blob.len()
        );
        let syms = blob_symbols(blob.len(), RATE_TABLE[7]);
        assert!(
            syms <= 7,
            "{syms} OFDM symbols — paper reports ~3 at comparable rates"
        );
    }

    #[test]
    fn rough_spaces_fall_back_to_full() {
        // Independent random spaces per subcarrier can't be differenced;
        // the escape level must keep the round trip correct anyway.
        let mut rng = StdRng::seed_from_u64(3);
        let spaces: Vec<Subspace> = (0..52)
            .map(|_| {
                let v: CVector = (0..2)
                    .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                    .collect();
                Subspace::span(2, &[v])
            })
            .collect();
        let blob = encode_alignment_space(&spaces);
        let decoded = decode_alignment_space(&blob).unwrap();
        let err = max_space_error(&spaces, &decoded);
        // 8-bit angular quantization bounds the projector error around
        // 0.03 — a subspace mismatch near -35 dB, far below the
        // hardware's 25-27 dB cancellation depth.
        assert!(err < 0.04, "subspace error {err}");
    }

    #[test]
    fn zero_dimension_space() {
        let spaces = vec![Subspace::zero(3); 52];
        let blob = encode_alignment_space(&spaces);
        assert_eq!(blob.len(), 2, "zero-dim blob should be header only");
        let decoded = decode_alignment_space(&blob).unwrap();
        assert_eq!(decoded.len(), 52);
        assert!(decoded.iter().all(|s| s.is_zero()));
    }

    #[test]
    fn three_antenna_two_dim_spaces() {
        let mut rng = StdRng::seed_from_u64(4);
        // Two smoothly varying directions.
        let a = smooth_spaces(52, 3, &mut rng);
        let b = smooth_spaces(52, 3, &mut rng);
        let spaces: Vec<Subspace> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| {
                let mut basis = x.basis().to_vec();
                basis.extend(y.basis().to_vec());
                Subspace::span(3, &basis)
            })
            .collect();
        // Guard: all spaces must have dim 2 for the codec.
        if spaces.iter().any(|s| s.dim() != 2) {
            return; // degenerate draw; skip
        }
        let blob = encode_alignment_space(&spaces);
        let decoded = decode_alignment_space(&blob).unwrap();
        let err = max_space_error(&spaces, &decoded);
        assert!(err < 0.08, "subspace error {err}");
    }

    #[test]
    fn malformed_blobs_rejected() {
        assert!(matches!(
            decode_alignment_space(&[]),
            Err(CodecError::Malformed)
        ));
        assert!(matches!(
            decode_alignment_space(&[0x21]),
            Err(CodecError::Malformed)
        ));
        // Truncated first subcarrier.
        assert!(matches!(
            decode_alignment_space(&[0x21, 52, 1, 2, 3]),
            Err(CodecError::Malformed)
        ));
        // Bad escape level on the generic (3-antenna) path.
        let mut rng = StdRng::seed_from_u64(5);
        let spaces = smooth_spaces(3, 3, &mut rng);
        let mut blob = encode_alignment_space(&spaces);
        // Find the first level byte (after header + full first SC) and
        // corrupt it.
        let level_pos = 2 + 6 * 2; // header + 6 components × 2 bytes
        blob[level_pos] = 9;
        assert!(matches!(
            decode_alignment_space(&blob),
            Err(CodecError::Malformed)
        ));
        // Truncated CP¹ blob.
        let spaces2 = smooth_spaces(8, 2, &mut rng);
        let blob2 = encode_alignment_space(&spaces2);
        assert!(matches!(
            decode_alignment_space(&blob2[..blob2.len() - 1]),
            Err(CodecError::Malformed)
        ));
    }

    #[test]
    fn phase_ambiguity_does_not_bloat_encoding() {
        // The same physical subspace with wildly rotated bases must still
        // compress — the encoder's phase alignment handles it.
        let mut rng = StdRng::seed_from_u64(6);
        let spaces = smooth_spaces(52, 2, &mut rng);
        let rotated: Vec<Subspace> = spaces
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let basis: Vec<CVector> = s
                    .basis()
                    .iter()
                    .map(|v| v.scale(Complex64::cis(2.399 * k as f64)))
                    .collect();
                Subspace::from_orthonormal(2, basis)
            })
            .collect();
        let plain = encode_alignment_space(&spaces).len();
        let rot = encode_alignment_space(&rotated).len();
        assert!(
            rot <= plain + 16,
            "rotation bloated encoding: {rot} vs {plain}"
        );
    }

    #[test]
    fn expected_subcarrier_count() {
        assert_eq!(expected_subcarriers(), 52);
    }
}
