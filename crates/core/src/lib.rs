//! # nplus — 802.11n+: random access heterogeneous MIMO networks
//!
//! A from-scratch reproduction of *"Random Access Heterogeneous MIMO
//! Networks"* (Lin, Gollakota, Katabi — ACM SIGCOMM 2011).
//!
//! 802.11n+ ("n+") lets nodes with different antenna counts contend not
//! just for **time** but for the **degrees of freedom** multiple antennas
//! provide: when the medium is already carrying transmissions, a node
//! with more antennas than the used degrees of freedom can carrier-sense
//! in the space orthogonal to them, win a secondary contention, and
//! transmit concurrently — without harming the ongoing exchanges.
//!
//! ## Crate map
//!
//! | module | paper section | what it implements |
//! |---|---|---|
//! | [`precoder`] | §3.3, Claims 3.1–3.5 | nulling + alignment pre-coding vectors |
//! | [`carrier_sense`] | §3.2 | multi-dimensional carrier sense by projection |
//! | [`handshake`] | §3.5 | differential alignment-space compression |
//! | [`link`] | §3.4 | zero-forcing SINRs and per-packet rate selection |
//! | [`power_control`] | §4 | the join-power threshold `L` |
//! | [`policy`] | §6 | pluggable MAC policies: n+, 802.11n, beamforming, oracle, greedy-join |
//! | [`observer`] | §6 | round-level event tap over simulation runs |
//! | [`sim`] | §6 | the round engine, sweeps and the [`sim::SweepSpec`] facade |
//!
//! The PHY, channel, medium, and MAC substrates live in their own crates
//! (`nplus-phy`, `nplus-channel`, `nplus-medium`, `nplus-mac`); the paper's
//! USRP2 testbed is replaced by a sample-level simulated medium — see
//! `DESIGN.md` for the substitution map.
//!
//! ## Quickstart
//!
//! ```
//! use nplus::precoder::{compute_precoders, OwnReceiver, ProtectedReceiver};
//! use nplus_linalg::{c64, CMatrix, Subspace};
//!
//! // A 2-antenna transmitter joins while a single-antenna pair is on the
//! // air (the paper's Fig. 2): null at rx1, deliver one stream to rx2.
//! let h_rx1 = CMatrix::from_vec(1, 2, vec![c64(0.9, 0.2), c64(-0.4, 0.6)]);
//! let h_rx2 = CMatrix::from_vec(2, 2, vec![
//!     c64(0.5, -0.1), c64(0.3, 0.8),
//!     c64(-0.2, 0.4), c64(0.7, 0.0),
//! ]);
//! let p = compute_precoders(
//!     2,
//!     &[ProtectedReceiver::nulling(h_rx1.clone())],
//!     &[OwnReceiver { channel: h_rx2, n_streams: 1, unwanted: Subspace::zero(2) }],
//! ).unwrap();
//! // The chosen vector creates a (numerically) perfect null at rx1.
//! assert!(h_rx1.mul_vec(&p.vectors[0]).norm() < 1e-10);
//! ```

#![forbid(unsafe_code)]

pub mod carrier_sense;
pub mod executor;
pub mod handshake;
pub mod link;
pub mod node;
pub mod observer;
pub mod policy;
pub mod power_control;
pub mod precoder;
pub mod sim;

pub use carrier_sense::{dof_is_busy, MultiDimCarrierSense, SenseThresholds};
pub use executor::{resolve_threads, run_indexed, run_indexed_chunked};
pub use handshake::{blob_symbols, decode_alignment_space, encode_alignment_space};
pub use link::{select_stream_rate, zf_sinr, SubcarrierObservation};
pub use node::{learn_forward_channel, plan_join, JoinError, JoinPlan, LearnedReceiver};
pub use observer::{
    ContentionKind, ContentionRecord, GoodputAccumulator, JoinRecord, NullObserver, RoundObserver,
    RoundRecord, RunIdentity, RunMeta, StreamRecord,
};
pub use policy::{
    policy_from_name, Beamforming, Dot11n, GreedyJoin, MacPolicy, NPlus, Oracle, PolicyView,
    BUILTIN_POLICY_NAMES,
};
pub use power_control::{join_power_decision, JoinPowerDecision, DEFAULT_L_DB};
pub use precoder::{
    compute_precoders, compute_precoders_ref, max_joinable_streams, residual_interference,
    OwnReceiver, OwnReceiverRef, PrecoderError, Precoding, ProtectedReceiver, ProtectedReceiverRef,
};
pub use sim::{
    aggregate_results, simulate, simulate_policy, sweep, sweep_parallel, CanonicalSpec, Flow,
    MobilityModel, Protocol, RunResult, Scenario, SeedResults, SimConfig, SimEngine, SweepError,
    SweepJob, SweepSpec, SweepStats, TrafficModel,
};

/// One-import surface for simulation users: the builder facade, the
/// scenario types, every built-in policy and propagation environment,
/// and the observer API.
///
/// ```
/// use nplus::prelude::*;
///
/// let stats = SweepSpec::new(Scenario::three_pairs())
///     .rounds(3)
///     .seed_count(2)
///     .protocols(&[Protocol::Dot11n, Protocol::NPlus])
///     .run();
/// assert!(stats[1].mean_total_mbps > 0.0);
/// ```
pub mod prelude {
    pub use crate::observer::{
        ContentionKind, ContentionRecord, GoodputAccumulator, JoinRecord, NullObserver,
        RoundObserver, RoundRecord, RunIdentity, RunMeta, StreamRecord,
    };
    pub use crate::policy::{
        policy_from_name, Beamforming, Dot11n, GreedyJoin, MacPolicy, NPlus, Oracle, PolicyView,
        BUILTIN_POLICY_NAMES,
    };
    pub use crate::sim::{
        aggregate_results, simulate, simulate_policy, sweep, sweep_parallel, CanonicalSpec, Flow,
        MobilityModel, Protocol, RunResult, Scenario, SeedResults, SimConfig, SimEngine,
        SweepError, SweepJob, SweepSpec, SweepStats, TrafficModel,
    };
    pub use nplus_channel::environment::{
        environment_from_name, ChannelEnvironment, DegradedHardware, EnvironmentError, MultiCell,
        OscillatorDraw, OutdoorFreeSpace, RichScatter, Sigcomm11Indoor, BUILTIN_ENVIRONMENT_NAMES,
        DEGRADED_HARDWARE, MULTI_CELL, OUTDOOR_FREE_SPACE, RICH_SCATTER, SIGCOMM11_INDOOR,
    };
}
