//! Join power control (paper §4, "Imperfections in Nulling and
//! Alignment").
//!
//! Practical nulling/alignment reduces interference by a finite depth
//! `L` dB (measured 25–27 dB on the paper's hardware). A joiner therefore
//! only helps the network if its *pre-cancellation* interference power at
//! every protected receiver is at most `L` dB above the noise floor —
//! then the residual after cancellation lands below the noise and is
//! harmless. n+ enforces this by:
//!
//! 1. estimating the interference power its signal would have at each
//!    protected receiver (it knows the channels via reciprocity);
//! 2. if any exceeds `L`, scaling its transmit power down so the worst
//!    one equals `L` — it contends (and transmits) at that lower power.

use nplus_linalg::{CMatrix, CMatrixSoA};

/// The protocol's cancellation-depth parameter, dB — re-exported from
/// the environment layer, which owns the single definition shared with
/// [`ChannelEnvironment::join_power_l_db`](nplus_channel::environment::ChannelEnvironment::join_power_l_db).
pub use nplus_channel::environment::DEFAULT_L_DB;

/// Interference power (linear, relative to noise) that a unit-total-power
/// transmission from an `M`-antenna transmitter would create at a
/// receiver with believed channel `h` (`N × M`), before any precoding:
/// the average over transmit directions, `‖H‖_F² / M`.
pub fn expected_interference_power(h: &CMatrix) -> f64 {
    let m = h.cols().max(1);
    h.frobenius_norm().powi(2) / m as f64
}

/// Split-storage sibling of [`expected_interference_power`] for channels
/// served straight from the cache's structure-of-arrays tables. The
/// Frobenius norm sums `re² + im²` in the same row-major entry order, so
/// the value is bit-identical to the interleaved path's.
pub fn expected_interference_power_soa(h: &CMatrixSoA) -> f64 {
    let m = h.cols().max(1);
    h.frobenius_norm().powi(2) / m as f64
}

/// Decision for a prospective joiner facing one protected receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinPowerDecision {
    /// Full power is fine: pre-cancellation interference is already below
    /// `L` dB over noise.
    FullPower,
    /// Join at reduced power: multiply the transmit amplitude by this
    /// factor (< 1) so the worst protected receiver sees exactly `L` dB.
    Reduced {
        /// Amplitude scaling factor in (0, 1).
        amplitude_factor: f64,
    },
}

impl JoinPowerDecision {
    /// The amplitude multiplier to apply (1.0 for full power).
    pub fn amplitude(&self) -> f64 {
        match self {
            JoinPowerDecision::FullPower => 1.0,
            JoinPowerDecision::Reduced { amplitude_factor } => *amplitude_factor,
        }
    }
}

/// Evaluates the join-power rule against every protected receiver.
///
/// `believed_channels` are the joiner's beliefs about its channels to the
/// protected receivers (noise-normalized units: `|h|² = SNR`);
/// `l_db` is the cancellation depth.
pub fn join_power_decision(believed_channels: &[&CMatrix], l_db: f64) -> JoinPowerDecision {
    let worst = believed_channels
        .iter()
        .map(|h| expected_interference_power(h))
        .fold(0.0f64, f64::max);
    join_power_decision_from_worst(worst, l_db)
}

/// The §4 rule applied to an already-reduced worst-case interference
/// power. Callers that fold `worst` incrementally (the engine's pooled
/// join planner, which never materializes a channel list) share the exact
/// threshold/scaling arithmetic of [`join_power_decision`] through this.
pub fn join_power_decision_from_worst(worst: f64, l_db: f64) -> JoinPowerDecision {
    let l_lin = 10f64.powf(l_db / 10.0);
    if worst <= l_lin {
        JoinPowerDecision::FullPower
    } else {
        JoinPowerDecision::Reduced {
            amplitude_factor: (l_lin / worst).sqrt(),
        }
    }
}

/// The residual interference power (relative to noise) left at a
/// protected receiver after cancellation with depth `l_db`, for a joiner
/// whose pre-cancellation power there is `pre_lin` and whose amplitude
/// was scaled by `decision`.
pub fn residual_after_cancellation(pre_lin: f64, decision: &JoinPowerDecision, l_db: f64) -> f64 {
    let depth = 10f64.powf(-l_db / 10.0);
    pre_lin * decision.amplitude().powi(2) * depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::c64;

    fn channel_with_power(snr_db: f64, n: usize, m: usize) -> CMatrix {
        // Uniform-magnitude entries with total expected interference =
        // requested SNR.
        let per_entry = (10f64.powf(snr_db / 10.0) * m as f64 / (n * m) as f64).sqrt();
        CMatrix::from_vec(n, m, vec![c64(per_entry, 0.0); n * m])
    }

    #[test]
    fn weak_interferer_keeps_full_power() {
        let h = channel_with_power(15.0, 1, 2); // 15 dB < 27 dB
        let d = join_power_decision(&[&h], DEFAULT_L_DB);
        assert_eq!(d, JoinPowerDecision::FullPower);
        assert_eq!(d.amplitude(), 1.0);
    }

    #[test]
    fn strong_interferer_reduces_power() {
        let h = channel_with_power(35.0, 2, 3); // 35 dB > 27 dB
        let d = join_power_decision(&[&h], DEFAULT_L_DB);
        match d {
            JoinPowerDecision::Reduced { amplitude_factor } => {
                // Power reduction of 8 dB → amplitude factor 10^(-8/20).
                let expect = 10f64.powf(-8.0 / 20.0);
                assert!(
                    (amplitude_factor - expect).abs() < 1e-9,
                    "factor {amplitude_factor} vs {expect}"
                );
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn worst_receiver_governs() {
        let weak = channel_with_power(10.0, 1, 2);
        let strong = channel_with_power(40.0, 1, 2);
        let d = join_power_decision(&[&weak, &strong], DEFAULT_L_DB);
        // 40 dB - 27 dB = 13 dB reduction.
        assert!((20.0 * d.amplitude().log10() + 13.0).abs() < 1e-9);
    }

    #[test]
    fn residual_lands_at_or_below_noise() {
        for snr_db in [10.0, 20.0, 27.0, 30.0, 45.0] {
            let h = channel_with_power(snr_db, 1, 1);
            let pre = expected_interference_power(&h);
            let d = join_power_decision(&[&h], DEFAULT_L_DB);
            let resid = residual_after_cancellation(pre, &d, DEFAULT_L_DB);
            assert!(
                resid <= 1.0 + 1e-9,
                "residual {resid} above noise at {snr_db} dB"
            );
        }
    }

    #[test]
    fn expected_power_accounts_for_antennas() {
        // 2x2 all-ones channel: ‖H‖² = 4, per-stream power 1/2 → 2.
        let h = CMatrix::from_vec(2, 2, vec![c64(1.0, 0.0); 4]);
        assert!((expected_interference_power(&h) - 2.0).abs() < 1e-12);
    }
}
