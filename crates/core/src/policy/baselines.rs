//! The three enum-era protocols and the greedy-join ablation as
//! [`MacPolicy`] implementations.
//!
//! `NPlus`, `Dot11n` and `Beamforming` are the exact behaviours the
//! former `Protocol` match arms hard-coded into the engine; the
//! `policy_regression` integration suite pins their results bit-for-bit
//! against values recorded from the enum-era implementation.

use super::{AllocScratch, MacPolicy, PolicyView};

/// The paper's contribution (§3): the first winner behaves like
/// 802.11n, later winners join through the precoder after §4 join
/// power control, and everyone ends with the first winner.
#[derive(Debug, Clone, Copy, Default)]
pub struct NPlus;

impl MacPolicy for NPlus {
    fn name(&self) -> &str {
        "nplus"
    }

    fn primary_allocation(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
    ) -> Vec<(usize, usize)> {
        view.fair_allocation(tx, 0, round)
    }

    fn primary_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.fair_allocation_into(tx, 0, round, ws, out);
    }

    fn join_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        k_used: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.fair_allocation_into(tx, k_used, round, ws, out);
    }

    fn allows_join(&self) -> bool {
        true
    }
}

/// Baseline: stock 802.11n. One winner per round sends `min(M, N)`
/// streams to a single receiver; no concurrency of any kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dot11n;

impl MacPolicy for Dot11n {
    fn name(&self) -> &str {
        "dot11n"
    }

    fn primary_allocation(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
    ) -> Vec<(usize, usize)> {
        view.single_flow_allocation(tx, round)
    }

    fn primary_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
        _ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.single_flow_allocation_into(tx, round, out);
    }
}

/// Baseline: multi-user beamforming (the paper's \[7\], Aryafar et al.).
/// A multi-client winner may serve several of its own clients
/// concurrently, but there is still no concurrency across transmitters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Beamforming;

impl MacPolicy for Beamforming {
    fn name(&self) -> &str {
        "beamforming"
    }

    fn primary_allocation(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
    ) -> Vec<(usize, usize)> {
        view.fair_allocation(tx, 0, round)
    }

    fn primary_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.fair_allocation_into(tx, 0, round, ws, out);
    }
}

/// Ablation: n+ with §4 join power control bypassed — joiners transmit
/// at full power however much residual interference they leave at
/// protected receivers. This is the policy-layer replacement for the
/// former `SimConfig::power_control = false` knob and reproduces it
/// bit-for-bit (the power decision was the only branch the flag
/// guarded, and it never consumed RNG).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyJoin;

impl MacPolicy for GreedyJoin {
    fn name(&self) -> &str {
        "greedy_join"
    }

    fn primary_allocation(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
    ) -> Vec<(usize, usize)> {
        view.fair_allocation(tx, 0, round)
    }

    fn primary_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.fair_allocation_into(tx, 0, round, ws, out);
    }

    fn join_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        k_used: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.fair_allocation_into(tx, k_used, round, ws, out);
    }

    fn allows_join(&self) -> bool {
        true
    }

    fn join_power_control(&self) -> bool {
        false
    }
}
