//! Pluggable MAC policies: the rules a protocol brings to the shared
//! round engine.
//!
//! [`SimEngine`](crate::sim::SimEngine) owns everything physical — true
//! and believed channels, precoding, SINR evaluation, handshake and time
//! accounting — and delegates every *protocol decision* to a
//! [`MacPolicy`]: what the primary winner transmits, whether later
//! winners may join mid-round, whether joiners run §4 power control, how
//! per-stream rates are picked, and whether the medium is accessed by
//! random contention at all (the omniscient scheduler flips that last
//! switch). The former `Protocol` enum's three match arms live on as the
//! [`NPlus`], [`Dot11n`] and [`Beamforming`] implementations — bit-for-
//! bit identical to the enum-era results at every seed — and the enum
//! itself survives as a thin constructor
//! ([`Protocol::policy`](crate::sim::Protocol::policy)).
//!
//! Two policies the closed enum could not express ship alongside the
//! baselines:
//!
//! * [`Oracle`] — the paper's §6.3 upper bound: a central scheduler with
//!   perfect channel knowledge that exhaustively tries every primary
//!   transmitter per round, joins the most capable nodes with no
//!   contention overhead, and keeps the best schedule.
//! * [`GreedyJoin`] — the n+ ablation that joins at full power (§4
//!   power control bypassed at the policy layer; this replaces the
//!   former `SimConfig::power_control` flag).

mod baselines;
mod oracle;

pub use baselines::{Beamforming, Dot11n, GreedyJoin, NPlus};
pub use oracle::Oracle;

use crate::link::select_stream_rate;
use crate::sim::Scenario;
use nplus_phy::rates::RateIndex;

/// Reusable buffers for the pooled allocation hooks
/// ([`MacPolicy::primary_allocation_into`] and friends). The engine
/// keeps one per run so steady-state rounds allocate nothing; the
/// allocating convenience methods build a throwaway one internally.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    caps: Vec<usize>,
    alloc: Vec<usize>,
}

/// The read-only slice of engine state a policy decides from: the
/// scenario's antenna counts and flows, plus the shared fair-allocation
/// helper the built-in policies are defined in terms of.
pub struct PolicyView<'a> {
    scenario: &'a Scenario,
    flows_of: &'a [Vec<usize>],
}

impl<'a> PolicyView<'a> {
    /// Builds a view over a scenario and its precomputed per-node flow
    /// lists (`flows_of[node]` = flow indices transmitted by `node`).
    pub(crate) fn new(scenario: &'a Scenario, flows_of: &'a [Vec<usize>]) -> Self {
        PolicyView { scenario, flows_of }
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// Antenna count of a scenario node.
    pub fn n_ant(&self, node: usize) -> usize {
        self.scenario.antennas[node]
    }

    /// Flow indices transmitted by `tx` (empty for non-transmitters).
    pub fn flows_of(&self, tx: usize) -> &[usize] {
        &self.flows_of[tx]
    }

    /// The shared fair allocator: splits the winner's spare antennas
    /// (`M − k_ongoing`) across its flows, respecting each receiver's
    /// spare dimensions (`N_rx − k_ongoing`) and rotating the split
    /// start across rounds so multi-flow transmitters serve their flows
    /// evenly. Returns `(flow, n_streams)` pairs with `n_streams > 0`.
    pub fn fair_allocation(
        &self,
        tx: usize,
        k_ongoing: usize,
        round: usize,
    ) -> Vec<(usize, usize)> {
        let mut ws = AllocScratch::default();
        let mut out = Vec::new();
        self.fair_allocation_into(tx, k_ongoing, round, &mut ws, &mut out);
        out
    }

    /// Pooled form of [`fair_allocation`](PolicyView::fair_allocation):
    /// identical greedy rotation, writing into caller-owned buffers so
    /// steady-state rounds allocate nothing.
    pub fn fair_allocation_into(
        &self,
        tx: usize,
        k_ongoing: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        out.clear();
        let flows = &self.flows_of[tx];
        let m = self.n_ant(tx).saturating_sub(k_ongoing);
        if m == 0 || flows.is_empty() {
            return;
        }
        ws.caps.clear();
        ws.caps.extend(flows.iter().map(|&f| {
            let rx = self.scenario.flows[f].rx;
            self.n_ant(rx).saturating_sub(k_ongoing.min(self.n_ant(rx)))
        }));
        ws.alloc.clear();
        ws.alloc.resize(flows.len(), 0);
        let mut remaining = m;
        let mut i = round % flows.len();
        let mut stalled = 0;
        while remaining > 0 && stalled < flows.len() {
            if ws.alloc[i] < ws.caps[i] {
                ws.alloc[i] += 1;
                remaining -= 1;
                stalled = 0;
            } else {
                stalled += 1;
            }
            i = (i + 1) % flows.len();
        }
        out.extend(
            flows
                .iter()
                .zip(&ws.alloc)
                .filter(|(_, &a)| a > 0)
                .map(|(&f, &a)| (f, a)),
        );
    }

    /// Stock 802.11n's allocation: one receiver per transmission
    /// opportunity, rotated across the transmitter's flows, with
    /// `min(M_tx, N_rx)` streams to it.
    pub fn single_flow_allocation(&self, tx: usize, round: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.single_flow_allocation_into(tx, round, &mut out);
        out
    }

    /// Pooled form of
    /// [`single_flow_allocation`](PolicyView::single_flow_allocation).
    pub fn single_flow_allocation_into(
        &self,
        tx: usize,
        round: usize,
        out: &mut Vec<(usize, usize)>,
    ) {
        out.clear();
        let flows = &self.flows_of[tx];
        if flows.is_empty() {
            return;
        }
        let f = flows[round % flows.len()];
        let rx = self.scenario.flows[f].rx;
        let n = self.n_ant(tx).min(self.n_ant(rx));
        out.push((f, n));
    }
}

/// A medium-access policy: the protocol-specific rules the round engine
/// consults. Implementations must be stateless across rounds (the
/// engine may re-plan a round while searching, and sweeps share one
/// policy value across worker threads — hence `Send + Sync`).
///
/// Every hook has a default that matches n+ behaviour except
/// [`primary_allocation`](MacPolicy::primary_allocation), which each
/// policy must define.
pub trait MacPolicy: Send + Sync {
    /// Stable lower-case name (`"nplus"`, `"dot11n"`, …) — used by
    /// [`SweepStats::policy`](crate::sim::SweepStats::policy), the CLI
    /// front-ends and [`policy_from_name`].
    fn name(&self) -> &str;

    /// Streams the round's primary winner transmits, as
    /// `(flow, n_streams)` pairs. Empty means the winner declines.
    fn primary_allocation(&self, view: &PolicyView, tx: usize, round: usize)
        -> Vec<(usize, usize)>;

    /// Pooled form of [`primary_allocation`](MacPolicy::primary_allocation):
    /// the engine's hot path calls this with reusable buffers so
    /// steady-state rounds allocate nothing. The default delegates to
    /// the allocating method (correct for any policy, but allocates);
    /// every built-in overrides it with the pooled view helpers.
    /// Overrides must produce the exact pairs `primary_allocation`
    /// returns.
    fn primary_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
        _ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        out.clear();
        out.extend(self.primary_allocation(view, tx, round));
    }

    /// Whether later winners may join mid-round through secondary
    /// contention (n+'s defining feature). Defaults to `false`.
    fn allows_join(&self) -> bool {
        false
    }

    /// Streams a secondary winner adds with `k_used` degrees of freedom
    /// already occupied. Defaults to the fair allocator.
    fn join_allocation(
        &self,
        view: &PolicyView,
        tx: usize,
        k_used: usize,
        round: usize,
    ) -> Vec<(usize, usize)> {
        view.fair_allocation(tx, k_used, round)
    }

    /// Pooled form of [`join_allocation`](MacPolicy::join_allocation),
    /// with the same override contract as
    /// [`primary_allocation_into`](MacPolicy::primary_allocation_into):
    /// the default delegates to the allocating method (correct for any
    /// override of `join_allocation`, but allocates), and the built-in
    /// joiners override it with the pooled fair allocator.
    fn join_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        k_used: usize,
        round: usize,
        _ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        out.clear();
        out.extend(self.join_allocation(view, tx, k_used, round));
    }

    /// Whether joiners run §4 join power control against protected
    /// receivers. Defaults to `true`; [`GreedyJoin`] turns it off.
    fn join_power_control(&self) -> bool {
        true
    }

    /// Perfect channel knowledge: transmitters plan with the *true*
    /// channels instead of reciprocity-plus-hardware-error estimates
    /// (and consume no RNG doing so). Defaults to `false`.
    fn perfect_knowledge(&self) -> bool {
        false
    }

    /// Omniscient scheduling: instead of random contention, the engine
    /// exhaustively evaluates every transmitter as the round's primary
    /// (with zero contention airtime) and keeps the schedule with the
    /// best goodput per unit airtime. Defaults to `false`; [`Oracle`]
    /// turns it on.
    fn omniscient(&self) -> bool {
        false
    }

    /// Per-stream rate selection from planned per-subcarrier SINRs.
    /// Defaults to the §3.4 ESNR-threshold rule; `None` means no rate
    /// is sustainable and the stream (hence the plan) is abandoned.
    fn select_rate(&self, per_subcarrier_sinr: &[f64]) -> Option<RateIndex> {
        select_stream_rate(per_subcarrier_sinr)
    }
}

/// The built-in policies by name, for CLI front-ends: `"nplus"`,
/// `"dot11n"`, `"beamforming"`, `"oracle"`, `"greedy_join"`.
pub fn policy_from_name(name: &str) -> Option<&'static dyn MacPolicy> {
    Some(match name {
        "nplus" => &NPlus,
        "dot11n" => &Dot11n,
        "beamforming" => &Beamforming,
        "oracle" => &Oracle,
        "greedy_join" => &GreedyJoin,
        _ => return None,
    })
}

/// Names of every built-in policy, in presentation order.
pub const BUILTIN_POLICY_NAMES: [&str; 5] =
    ["dot11n", "beamforming", "nplus", "greedy_join", "oracle"];

// Policies cross sweep worker threads by shared reference.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NPlus>();
    assert_send_sync::<Dot11n>();
    assert_send_sync::<Beamforming>();
    assert_send_sync::<GreedyJoin>();
    assert_send_sync::<Oracle>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Scenario;

    fn view_fixture(scenario: &Scenario) -> Vec<Vec<usize>> {
        (0..scenario.antennas.len())
            .map(|n| scenario.flows_of(n))
            .collect()
    }

    #[test]
    fn builtin_names_round_trip_through_the_registry() {
        for name in BUILTIN_POLICY_NAMES {
            let p = policy_from_name(name).expect("builtin must resolve");
            assert_eq!(p.name(), name);
        }
        assert!(policy_from_name("csma_ca_2003").is_none());
    }

    #[test]
    fn fair_allocation_matches_enum_era_allocator() {
        let scenario = Scenario::ap_downlink();
        let flows_of = view_fixture(&scenario);
        let view = PolicyView::new(&scenario, &flows_of);
        // AP2 (3 antennas, flows 1 and 2 to 2-antenna clients): all three
        // spare antennas split 2/1 with the rotation deciding who gets 2.
        assert_eq!(view.fair_allocation(2, 0, 0), vec![(1, 2), (2, 1)]);
        assert_eq!(view.fair_allocation(2, 0, 1), vec![(1, 1), (2, 2)]);
        // One DoF already used: 2 spare antennas, each client has 1 spare dim.
        assert_eq!(view.fair_allocation(2, 1, 0), vec![(1, 1), (2, 1)]);
        // No antennas left.
        assert!(view.fair_allocation(2, 3, 0).is_empty());
    }

    #[test]
    fn single_flow_allocation_rotates_and_caps_streams() {
        let scenario = Scenario::ap_downlink();
        let flows_of = view_fixture(&scenario);
        let view = PolicyView::new(&scenario, &flows_of);
        // c1 (1 ant) -> AP1 (2 ant): min(1, 2) = 1 stream.
        assert_eq!(view.single_flow_allocation(0, 0), vec![(0, 1)]);
        // AP2 (3 ant) -> client (2 ant): min(3, 2) = 2 streams, rotating.
        assert_eq!(view.single_flow_allocation(2, 0), vec![(1, 2)]);
        assert_eq!(view.single_flow_allocation(2, 1), vec![(2, 2)]);
    }

    #[test]
    fn pooled_allocators_match_allocating_forms() {
        let scenario = Scenario::ap_downlink();
        let flows_of = view_fixture(&scenario);
        let view = PolicyView::new(&scenario, &flows_of);
        let mut ws = AllocScratch::default();
        let mut out = Vec::new();
        for tx in 0..scenario.antennas.len() {
            for k in 0..4 {
                for round in 0..5 {
                    view.fair_allocation_into(tx, k, round, &mut ws, &mut out);
                    assert_eq!(out, view.fair_allocation(tx, k, round));
                }
            }
            for round in 0..5 {
                view.single_flow_allocation_into(tx, round, &mut out);
                assert_eq!(out, view.single_flow_allocation(tx, round));
                for name in BUILTIN_POLICY_NAMES {
                    let p = policy_from_name(name).unwrap();
                    p.primary_allocation_into(&view, tx, round, &mut ws, &mut out);
                    assert_eq!(out, p.primary_allocation(&view, tx, round));
                    for k in 0..4 {
                        p.join_allocation_into(&view, tx, k, round, &mut ws, &mut out);
                        assert_eq!(out, p.join_allocation(&view, tx, k, round));
                    }
                }
            }
        }
    }

    #[test]
    fn policy_flag_matrix() {
        assert!(NPlus.allows_join() && NPlus.join_power_control());
        assert!(!NPlus.perfect_knowledge() && !NPlus.omniscient());
        assert!(!Dot11n.allows_join() && !Beamforming.allows_join());
        assert!(GreedyJoin.allows_join() && !GreedyJoin.join_power_control());
        assert!(Oracle.omniscient() && Oracle.perfect_knowledge() && Oracle.allows_join());
    }
}
