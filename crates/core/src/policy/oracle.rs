//! The omniscient-scheduler upper bound (§6.3–§6.4).

use super::{AllocScratch, MacPolicy, PolicyView};

/// The paper's upper bound: a central scheduler with perfect channel
/// knowledge and zero contention overhead.
///
/// Where the random-access policies draw a primary winner from CSMA
/// backoff, `Oracle` makes the engine evaluate **every** transmitter as
/// the round's primary — planning the full round (fair allocation,
/// greedy joins by the most capable remaining nodes, §3.4 rate
/// selection, settlement) for each candidate — and keep the schedule
/// with the highest delivered bits per unit airtime. Perfect channel
/// knowledge makes each evaluation deterministic and its nulls exact:
/// no contention slots, no collisions, no hardware-error residuals, and
/// every stream's realized ESNR equals its planned ESNR, so selected
/// rates always deliver.
///
/// Join power control is off: §4 exists to bound the damage of
/// *imperfect* cancellation, and the oracle's cancellation is exact.
///
/// The `protocol_invariants` suite checks that this policy's mean total
/// goodput is an upper bound on n+'s over every generated scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl MacPolicy for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn primary_allocation(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
    ) -> Vec<(usize, usize)> {
        view.fair_allocation(tx, 0, round)
    }

    fn primary_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.fair_allocation_into(tx, 0, round, ws, out);
    }

    fn join_allocation_into(
        &self,
        view: &PolicyView,
        tx: usize,
        k_used: usize,
        round: usize,
        ws: &mut AllocScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        view.fair_allocation_into(tx, k_used, round, ws, out);
    }

    fn allows_join(&self) -> bool {
        true
    }

    fn join_power_control(&self) -> bool {
        false
    }

    fn perfect_knowledge(&self) -> bool {
        true
    }

    fn omniscient(&self) -> bool {
        true
    }
}
