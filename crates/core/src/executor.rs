//! Deterministic scoped-thread job executor for Monte-Carlo batches.
//!
//! The sweep layer runs many independent, seed-indexed jobs (one drawn
//! topology + simulation batch per seed). This module executes such a
//! job list on a fixed number of worker threads while keeping the
//! *results* — and therefore every downstream aggregate — bit-for-bit
//! identical to a serial run:
//!
//! * **Work distribution is dynamic, result order is not.** Workers pull
//!   chunks of job indices from a shared atomic cursor (fast workers
//!   take more jobs; no static striping that a slow seed could skew),
//!   but every result is tagged with its job index and the final vector
//!   is reassembled in index order.
//! * **No cross-job state.** The job closure receives only its index;
//!   anything seeded must be derived from that index (or the data it
//!   looks up), never from execution order, thread identity or time.
//! * **No dependencies, no unsafe.** Built on [`std::thread::scope`]
//!   plus an [`AtomicUsize`] cursor; worker results travel back through
//!   the scoped join handles, so no locks are held while jobs run.
//!
//! Determinism contract: for a pure `job` function, the returned vector
//! is identical for every `threads` value (including 1). The sweep
//! proptests assert this end-to-end through `sim::sweep_parallel`.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a caller-supplied thread count: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Runs `n_jobs` independent jobs on up to `threads` scoped workers and
/// returns their results in job-index order.
///
/// `threads == 0` resolves to the available parallelism; `threads == 1`
/// (or a single job) runs inline on the caller's thread with no worker
/// spawns at all. Workers claim one job at a time from an atomic cursor
/// — the right granularity for coarse jobs like whole-topology
/// simulations; use [`run_indexed_chunked`] when jobs are tiny.
///
/// Panics in a job are propagated to the caller after the scope joins.
pub fn run_indexed<T, F>(n_jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_chunked(n_jobs, threads, 1, job)
}

/// [`run_indexed`] with an explicit claim granularity: each cursor fetch
/// hands a worker `chunk` consecutive job indices, amortizing the atomic
/// traffic when individual jobs are cheap. Results are still returned in
/// job-index order regardless of which worker ran what.
pub fn run_indexed_chunked<T, F>(n_jobs: usize, threads: usize, chunk: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunk = chunk.max(1);
    let threads = resolve_threads(threads).min(n_jobs);
    if threads <= 1 {
        return (0..n_jobs).map(job).collect();
    }

    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let job = &job;
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n_jobs {
                            break;
                        }
                        for i in start..(start + chunk).min(n_jobs) {
                            out.push((i, job(i)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    // Reassemble in job-index order — the whole point of the tagging.
    tagged.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), n_jobs, "executor lost or duplicated jobs");
    tagged.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn chunked_claiming_covers_every_job_once() {
        for chunk in [1usize, 2, 5, 64] {
            let calls = AtomicUsize::new(0);
            let out = run_indexed_chunked(23, 4, chunk, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(out, (0..23).collect::<Vec<_>>(), "chunk {chunk}");
            assert_eq!(calls.load(Ordering::Relaxed), 23, "chunk {chunk}");
        }
    }

    #[test]
    fn zero_jobs_and_more_threads_than_jobs() {
        let empty: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(empty.is_empty());
        let out = run_indexed(2, 16, |i| i + 100);
        assert_eq!(out, vec![100, 101]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let out = run_indexed(9, 0, |i| i);
        assert_eq!(out, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_for_derived_rngs() {
        // The sweep pattern in miniature: each job seeds its own RNG from
        // its index; results must not depend on the thread count.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let job = |i: usize| {
            let mut rng = StdRng::seed_from_u64(i as u64 ^ 0x5EED_CAFE);
            (0..50).map(|_| rng.gen::<f64>()).sum::<f64>()
        };
        let serial = run_indexed(16, 1, job);
        for threads in [2usize, 4, 7] {
            assert_eq!(serial, run_indexed(16, threads, job), "{threads} threads");
        }
    }
}
