//! Property tests owned by the testkit itself: they exercise the shared
//! strategies against the core invariants every suite leans on —
//! precoder nulling depth, the handshake codec round-trip, and the
//! channel-cache layer matching direct evaluation.

use nplus::handshake::{decode_alignment_space, encode_alignment_space, max_space_error};
use nplus::precoder::{compute_precoders, residual_interference, OwnReceiver, ProtectedReceiver};
use nplus_channel::fading::DelayProfile;
use nplus_channel::freq_table::FreqResponseTable;
use nplus_channel::mimo::MimoLink;
use nplus_channel::placement::Testbed;
use nplus_linalg::{rank, Subspace};
use nplus_medium::chancache::ChannelCache;
use nplus_medium::topology::{build_topology, TopologyConfig};
use nplus_phy::params::occupied_subcarrier_indices;
use nplus_testkit::strategies::{complex_matrix, complex_vector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const NULL_TOL: f64 = 1e-16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every joiner antenna count m ≥ 2, nulling at a single-antenna
    /// receiver leaves residual interference below tolerance while the
    /// joiner's own receiver keeps a usable signal.
    #[test]
    fn nulling_residual_below_tolerance(
        m in 2usize..5,
        seed_protected in complex_matrix(1, 4),
        seed_own in complex_matrix(4, 4),
    ) {
        let h_protected = seed_protected.submatrix(0, 1, 0, m);
        let h_own = seed_own.submatrix(0, m, 0, m);
        prop_assume!(rank(&h_protected, Some(1e-6)) == 1);
        prop_assume!(rank(&h_own, Some(1e-6)) == m);
        let p = compute_precoders(
            m,
            &[ProtectedReceiver::nulling(h_protected.clone())],
            &[OwnReceiver { channel: h_own.clone(), n_streams: 1, unwanted: Subspace::zero(m) }],
        ).unwrap();
        let leak = residual_interference(&h_protected, &Subspace::zero(1), &p.vectors[0]);
        prop_assert!(leak < NULL_TOL, "leak {leak} at m={m}");
        prop_assert!(h_own.mul_vec(&p.vectors[0]).norm_sqr() > 1e-8);
    }

    /// Nulling at a protected receiver never costs the precoder its unit
    /// power budget: the streams still sum to power 1.
    #[test]
    fn nulling_respects_power_budget(
        h1 in complex_matrix(1, 3),
        h_own in complex_matrix(3, 3),
        n_streams in 1usize..3,
    ) {
        prop_assume!(rank(&h1, Some(1e-6)) == 1);
        prop_assume!(rank(&h_own, Some(1e-6)) == 3);
        let p = compute_precoders(
            3,
            &[ProtectedReceiver::nulling(h1)],
            &[OwnReceiver { channel: h_own, n_streams, unwanted: Subspace::zero(3) }],
        ).unwrap();
        let total: f64 = p.vectors.iter().map(|v| v.norm_sqr()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total power {total}");
    }

    /// The handshake codec round-trips alignment spaces drawn from the
    /// shared strategies with bounded subspace error.
    #[test]
    fn handshake_round_trip_bounded_error(
        dirs in proptest::collection::vec(complex_vector(2), 1..52),
    ) {
        let spaces: Vec<Subspace> = dirs
            .iter()
            .filter(|d| d.norm() > 0.15)
            .map(|d| Subspace::span(2, std::slice::from_ref(d)))
            .collect();
        prop_assume!(!spaces.is_empty());
        prop_assume!(spaces.iter().all(|s| s.dim() == 1));
        let blob = encode_alignment_space(&spaces);
        let decoded = decode_alignment_space(&blob).unwrap();
        prop_assert_eq!(decoded.len(), spaces.len());
        let err = max_space_error(&spaces, &decoded);
        prop_assert!(err < 0.05, "subspace error {err}");
    }

    /// Encoding is deterministic: the same spaces produce the same blob,
    /// so a retransmitted handshake is bit-identical.
    #[test]
    fn handshake_encoding_deterministic(
        dirs in proptest::collection::vec(complex_vector(2), 1..20),
    ) {
        let spaces: Vec<Subspace> = dirs
            .iter()
            .filter(|d| d.norm() > 0.15)
            .map(|d| Subspace::span(2, std::slice::from_ref(d)))
            .collect();
        prop_assume!(!spaces.is_empty());
        prop_assert_eq!(encode_alignment_space(&spaces), encode_alignment_space(&spaces));
    }

    /// `FreqResponseTable` matches direct `channel_matrix` evaluation to
    /// 1e-12 on random links of every antenna shape and delay profile.
    #[test]
    fn freq_table_matches_direct_evaluation(
        seed in 0u64..1_000_000,
        n_tx in 1usize..5,
        n_rx in 1usize..5,
        nlos in any::<bool>(),
        amp in 0.1f64..40.0,
    ) {
        let profile = if nlos { DelayProfile::nlos() } else { DelayProfile::los() };
        let mut rng = StdRng::seed_from_u64(seed);
        let link = MimoLink::sample(n_tx, n_rx, amp, &profile, &mut rng);
        let bins = occupied_subcarrier_indices();
        let table = FreqResponseTable::new(&link, &bins, 64);
        for (pos, &k) in bins.iter().enumerate() {
            let direct = link.channel_matrix(k, 64);
            prop_assert!(
                table.matrix(pos).to_aos().approx_eq(&direct, 1e-12),
                "bin {} mismatch", k
            );
        }
    }

    /// `ChannelCache` serves the same matrices as walking the topology's
    /// links directly, for every directed pair and occupied subcarrier.
    #[test]
    fn channel_cache_matches_topology_links(seed in 0u64..100_000) {
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(seed);
        let antennas = vec![1, 2, 3];
        let topo = build_topology(&tb, &TopologyConfig::new(antennas.clone()), 10e6, seed, &mut rng);
        let bins = occupied_subcarrier_indices();
        let cache = ChannelCache::build(&topo, &bins, 64);
        for from in 0..antennas.len() {
            for to in 0..antennas.len() {
                if from == to { continue; }
                let link = topo.medium.link(topo.nodes[from], topo.nodes[to]).unwrap();
                for (pos, &k) in bins.iter().enumerate() {
                    let cached = cache.matrix(from, to, pos);
                    prop_assert!(cached.is_some(), "dense link {}->{} missing from cache", from, to);
                    prop_assert!(
                        cached.unwrap().to_aos().approx_eq(&link.channel_matrix(k, 64), 1e-12),
                        "link {}->{} bin {}", from, to, k
                    );
                }
            }
        }
    }
}
