//! Small deterministic fixture constructors shared across suites.

use nplus_linalg::{c64, CMatrix, CVector, Complex64, Subspace};
use rand::Rng;

/// Random complex entries uniform in the unit square centred on 0.
pub fn random_complex<R: Rng>(rng: &mut R) -> Complex64 {
    c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
}

/// A `rows × cols` matrix of [`random_complex`] entries — the generic
/// full-rank-with-probability-1 channel draw the benches use.
pub fn random_matrix<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> CMatrix {
    let data: Vec<Complex64> = (0..rows * cols).map(|_| random_complex(rng)).collect();
    CMatrix::from_vec(rows, cols, data)
}

/// A random complex vector of dimension `n`.
pub fn random_vector<R: Rng>(n: usize, rng: &mut R) -> CVector {
    CVector::from_vec((0..n).map(|_| random_complex(rng)).collect())
}

/// A random direction of dimension `n` with norm bounded away from zero
/// (redrawn until non-degenerate), suitable for spanning subspaces.
pub fn random_direction<R: Rng>(n: usize, rng: &mut R) -> CVector {
    loop {
        let v = random_vector(n, rng);
        if v.norm() > 0.2 {
            return v;
        }
    }
}

/// A random 1-dimensional subspace of an `ambient`-dimensional space.
pub fn random_line<R: Rng>(ambient: usize, rng: &mut R) -> Subspace {
    Subspace::span(ambient, &[random_direction(ambient, rng)])
}

/// `n` random fair bits (0/1 bytes).
pub fn random_bits<R: Rng>(n: usize, rng: &mut R) -> Vec<u8> {
    (0..n).map(|_| rng.gen_range(0..2u8)).collect()
}

/// `n` random payload bytes.
pub fn random_payload<R: Rng>(n: usize, rng: &mut R) -> Vec<u8> {
    (0..n).map(|_| rng.gen()).collect()
}

/// A complex white waveform of the given length and per-sample power.
pub fn random_waveform<R: Rng>(len: usize, power: f64, rng: &mut R) -> Vec<Complex64> {
    // random_complex has E|z|^2 = 1/6; rescale to the requested power.
    let scale = (6.0 * power).sqrt();
    (0..len).map(|_| random_complex(rng).scale(scale)).collect()
}
