//! Test support for the n+ workspace: seeded scenario builders,
//! channel/medium fixtures, proptest strategies and tolerance-aware
//! assertions.
//!
//! Everything here is deterministic given a seed. The builders mirror
//! the paper's canonical setups so integration tests, figure binaries
//! and benchmarks all run the *same* scenarios instead of hand-rolling
//! their own copies:
//!
//! * [`scenario::two_pair_medium`] — Fig. 2: a 1-antenna pair plus a
//!   2-antenna pair on a sample-level medium;
//! * [`scenario::three_pairs`] — Fig. 3: contending pairs with 1, 2 and
//!   3 antennas on a random testbed placement;
//! * [`scenario::ap_downlink`] — Fig. 4: heterogeneous AP topology;
//! * [`scenario::sensing_trio`] — Fig. 6/9: a 3-antenna node sensing
//!   past an ongoing strong transmission;
//! * [`generator::ScenarioGenerator`] — seeded random N-pair and
//!   multi-AP scenario families (1–4 antennas, ≤16 nodes) for the
//!   Monte-Carlo sweep binaries.

#![forbid(unsafe_code)]

pub mod fixtures;
pub mod generator;
pub mod scenario;
pub mod spec;
pub mod strategies;

pub use generator::ScenarioGenerator;
pub use spec::{city_scenario, parse_scenario_spec, parse_spec, ParsedSpec, SCENARIO_SPEC_HELP};

use nplus_linalg::Complex64;

/// Fresh deterministic RNG for a test.
pub fn rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Function form of [`assert_c64_close!`].
#[track_caller]
pub fn assert_c64_close(actual: Complex64, expected: Complex64, tol: f64) {
    assert!(
        actual.approx_eq(expected, tol),
        "complex values differ by more than {tol}: {actual:?} vs {expected:?}"
    );
}

/// Bit-error count between two equal-length bit/byte slices.
pub fn bit_errors(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "bit_errors on unequal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Bit-error rate between two equal-length bit slices.
pub fn bit_error_rate(a: &[u8], b: &[u8]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    bit_errors(a, b) as f64 / a.len() as f64
}

/// Assert two `Complex64` values are within `tol` of each other,
/// with optional extra context.
#[macro_export]
macro_rules! assert_c64_close {
    ($actual:expr, $expected:expr, $tol:expr $(,)?) => {{
        let (a, e, t) = ($actual, $expected, $tol);
        assert!(
            a.approx_eq(e, t),
            "complex values differ by more than {t}: {a:?} vs {e:?}"
        );
    }};
    ($actual:expr, $expected:expr, $tol:expr, $($arg:tt)+) => {{
        let (a, e, t) = ($actual, $expected, $tol);
        assert!(
            a.approx_eq(e, t),
            "complex values differ by more than {t}: {a:?} vs {e:?} — {}",
            format_args!($($arg)+)
        );
    }};
}

/// Assert a linear-power SINR is within `tol_db` of an expected value.
#[macro_export]
macro_rules! assert_sinr_db_close {
    ($actual:expr, $expected:expr, $tol_db:expr $(,)?) => {{
        let (a, e, t): (f64, f64, f64) = ($actual, $expected, $tol_db);
        let diff = 10.0 * (a.max(1e-12) / e.max(1e-12)).log10();
        assert!(
            diff.abs() <= t,
            "SINR off by {diff:+.2} dB (> {t} dB): {a:.4} vs expected {e:.4}"
        );
    }};
}

/// Assert a bit-error rate computed from two bit slices stays below a
/// bound, reporting the measured BER on failure.
#[macro_export]
macro_rules! assert_ber_below {
    ($got:expr, $want:expr, $max_ber:expr $(,)?) => {
        $crate::assert_ber_below!($got, $want, $max_ber, "");
    };
    ($got:expr, $want:expr, $max_ber:expr, $($arg:tt)+) => {{
        let ber = $crate::bit_error_rate($got, $want);
        let max: f64 = $max_ber;
        assert!(
            ber <= max,
            "BER {ber:.4} exceeds {max} {}",
            format_args!($($arg)+)
        );
    }};
}
