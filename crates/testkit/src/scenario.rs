//! Seeded builders for the paper's canonical scenarios.

use nplus::carrier_sense::MultiDimCarrierSense;
use nplus::policy::MacPolicy;
use nplus::sim::{simulate, simulate_policy, Protocol, RunResult, Scenario, SimConfig};
use nplus_channel::environment::{ChannelEnvironment, EnvironmentError};
use nplus_channel::fading::DelayProfile;
use nplus_channel::mimo::MimoLink;
use nplus_channel::placement::Testbed;
use nplus_linalg::{CMatrix, Complex64};
use nplus_medium::medium::{Medium, Transmission};
use nplus_medium::topology::build_environment_topology;
use nplus_medium::topology::{build_topology, Topology, TopologyConfig};
use nplus_medium::NodeId;
use nplus_phy::params::OfdmConfig;
use nplus_phy::preamble::stf_time;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fixtures::random_waveform;

/// The paper's 10 MHz USRP2 medium clock, shared by every scenario.
pub const BANDWIDTH_HZ: f64 = 10e6;

/// A scenario placed on the SIGCOMM'11 testbed, ready to simulate.
#[derive(Debug)]
pub struct BuiltScenario {
    /// The traffic/antenna description being simulated.
    pub scenario: Scenario,
    /// Its placement on the testbed map, with per-link channels.
    pub topology: Topology,
}

impl BuiltScenario {
    /// Simulate with full control over the config.
    pub fn run_with(&self, protocol: Protocol, cfg: &SimConfig, sim_seed: u64) -> RunResult {
        let mut rng = StdRng::seed_from_u64(sim_seed);
        simulate(&self.topology, &self.scenario, protocol, cfg, &mut rng)
    }

    /// [`run_with`](BuiltScenario::run_with) for an arbitrary
    /// [`MacPolicy`] (oracle, greedy-join, or a custom one).
    pub fn run_policy(&self, policy: &dyn MacPolicy, cfg: &SimConfig, sim_seed: u64) -> RunResult {
        let mut rng = StdRng::seed_from_u64(sim_seed);
        simulate_policy(&self.topology, &self.scenario, policy, cfg, &mut rng)
    }
}

/// Place an arbitrary scenario on a random SIGCOMM'11 testbed draw.
///
/// Scenarios that fit the paper's 20-location map use it unchanged (so
/// existing seeds reproduce bit-identical placements); larger ones —
/// the generator's dense family goes to 32 nodes — place on the
/// two-wing extended map.
pub fn build_scenario(scenario: Scenario, placement_seed: u64) -> BuiltScenario {
    let testbed = Testbed::fitting(scenario.antennas.len());
    let mut rng = StdRng::seed_from_u64(placement_seed);
    let topology = build_topology(
        &testbed,
        &TopologyConfig::new(scenario.antennas.clone()),
        BANDWIDTH_HZ,
        placement_seed,
        &mut rng,
    );
    BuiltScenario { scenario, topology }
}

/// [`build_scenario`] in an arbitrary propagation environment: the map
/// comes from the environment's own
/// [`testbed`](ChannelEnvironment::testbed) hook, the links from its
/// loss/fading draws. Note the returned topology does *not* carry the
/// environment's [`hardware`](ChannelEnvironment::hardware) — set it on
/// the `SimConfig` (as `SweepSpec::environment` does) when simulating.
///
/// # Errors
/// [`EnvironmentError::TooManyNodes`] when the scenario outsizes the
/// environment's largest map.
pub fn build_scenario_in(
    env: &dyn ChannelEnvironment,
    scenario: Scenario,
    placement_seed: u64,
) -> Result<BuiltScenario, EnvironmentError> {
    let testbed = env.testbed(scenario.antennas.len())?;
    let mut rng = StdRng::seed_from_u64(placement_seed);
    let topology = build_environment_topology(
        env,
        &testbed,
        &scenario.antennas,
        BANDWIDTH_HZ,
        placement_seed,
        &mut rng,
    )?;
    Ok(BuiltScenario { scenario, topology })
}

/// Fig. 3: contending pairs with 1, 2 and 3 antennas.
pub fn three_pairs(placement_seed: u64) -> BuiltScenario {
    build_scenario(Scenario::three_pairs(), placement_seed)
}

/// Fig. 4: c1 (1 ant) → AP1 (2 ant) uplink while AP2 (3 ant) serves
/// c2/c3 (2 ant each) downlink.
pub fn ap_downlink(placement_seed: u64) -> BuiltScenario {
    build_scenario(Scenario::ap_downlink(), placement_seed)
}

/// Fig. 2: a single-antenna pair and a two-antenna pair on a
/// sample-level medium with strong links everywhere.
#[derive(Debug)]
pub struct TwoPairMedium {
    /// The sample-level medium holding all four nodes.
    pub medium: Medium,
    /// Single-antenna transmitter of pair 1.
    pub tx1: NodeId,
    /// Single-antenna receiver of pair 1.
    pub rx1: NodeId,
    /// Two-antenna transmitter of pair 2.
    pub tx2: NodeId,
    /// Two-antenna receiver of pair 2.
    pub rx2: NodeId,
}

impl TwoPairMedium {
    /// All four nodes in `[tx1, rx1, tx2, rx2]` order.
    pub fn nodes(&self) -> [NodeId; 4] {
        [self.tx1, self.rx1, self.tx2, self.rx2]
    }
}

/// Builds the Fig. 2 node set: tx1/rx1 single antenna, tx2/rx2 two
/// antennas, SNRs in the 12–28 dB range so decoding is clean.
pub fn two_pair_medium(seed: u64) -> TwoPairMedium {
    let cfg = OfdmConfig::usrp2();
    let mut medium = Medium::new(cfg.bandwidth_hz, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let tx1 = medium.add_node(1, 0.0);
    let rx1 = medium.add_node(1, 0.0);
    let tx2 = medium.add_node(2, 0.0);
    let rx2 = medium.add_node(2, 0.0);
    medium.set_link(
        tx1,
        rx1,
        MimoLink::sample(1, 1, 25.0, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        tx1,
        rx2,
        MimoLink::sample(1, 2, 18.0, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        tx2,
        rx1,
        MimoLink::sample(2, 1, 20.0, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        tx2,
        rx2,
        MimoLink::sample(2, 2, 28.0, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        tx1,
        tx2,
        MimoLink::sample(1, 2, 15.0, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        rx1,
        tx2,
        MimoLink::sample(1, 2, 15.0, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        rx1,
        rx2,
        MimoLink::sample(1, 2, 12.0, &DelayProfile::los(), &mut rng),
    );
    // This final draw overwrites the first tx1→rx1 link on purpose: the
    // suites' seeds are tuned against this exact RNG consumption order.
    medium.set_link(
        tx1,
        rx1,
        MimoLink::sample(1, 1, 25.0, &DelayProfile::los(), &mut rng),
    );
    TwoPairMedium {
        medium,
        tx1,
        rx1,
        tx2,
        rx2,
    }
}

/// Fig. 6/9: a strong single-antenna tx1 occupying the medium, a weak
/// 2-antenna tx2 that may join, and a 3-antenna tx3 sensing through a
/// projection orthogonal to tx1's signal.
#[derive(Debug)]
pub struct SensingTrio {
    /// The sample-level medium holding all three transmitters.
    pub medium: Medium,
    /// tx3's carrier-sense front end, pre-loaded with tx1's direction.
    pub sensor: MultiDimCarrierSense,
    /// Strong single-antenna occupant.
    pub tx1: NodeId,
    /// Weak two-antenna joiner.
    pub tx2: NodeId,
    /// Three-antenna node doing the sensing.
    pub tx3: NodeId,
}

/// Sample at which [`sensing_trio`]'s joiner starts transmitting.
pub const JOINER_START: u64 = 3000;

/// Builds one sensing experiment: tx1 transmits a 6000-sample white
/// waveform from t=0; if `tx2_transmits`, tx2 sends an STF followed by
/// payload from [`JOINER_START`]. The sensor projects tx1's true
/// channel away (estimation accuracy is tested elsewhere).
pub fn sensing_trio(seed: u64, tx1_amp: f64, tx2_amp: f64, tx2_transmits: bool) -> SensingTrio {
    let cfg = OfdmConfig::usrp2();
    let mut medium = Medium::new(cfg.bandwidth_hz, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let tx1 = medium.add_node(1, 0.0);
    let tx2 = medium.add_node(2, 0.0);
    let tx3 = medium.add_node(3, 0.0);
    medium.set_link(
        tx1,
        tx3,
        MimoLink::sample(1, 3, tx1_amp, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        tx2,
        tx3,
        MimoLink::sample(2, 3, tx2_amp, &DelayProfile::nlos(), &mut rng),
    );

    // tx1: continuous random payload (per-sample power 2.0) from t=0.
    let wave = random_waveform(6000, 2.0, &mut rng);
    medium.transmit(Transmission {
        from: tx1,
        start: 0,
        streams: vec![wave],
        cfo_precompensation_hz: 0.0,
    });

    if tx2_transmits {
        let stf = stf_time(&cfg);
        let mut streams = vec![stf.clone(), vec![Complex64::ZERO; stf.len()]];
        // Fill after the preamble with payload on both antennas.
        for s in streams.iter_mut() {
            s.extend(random_waveform(2000, 1.0, &mut rng));
        }
        medium.transmit(Transmission {
            from: tx2,
            start: JOINER_START,
            streams,
            cfo_precompensation_hz: 0.0,
        });
    }

    let h: Vec<CMatrix> = medium.link(tx1, tx3).unwrap().channel_matrices(cfg.fft_len);
    let sensor = MultiDimCarrierSense::from_ongoing(3, cfg, &[h]);
    SensingTrio {
        medium,
        sensor,
        tx1,
        tx2,
        tx3,
    }
}
