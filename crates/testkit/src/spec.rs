//! Textual scenario-spec parsing shared by every served front-end.
//!
//! The `sweep` CLI, the `sweep-server` wire protocol and the
//! `sweep-load` generator all accept the same compact scenario grammar
//! (`three_pairs`, `pairs:4`, `multi_ap:2x3`, `hidden:5`, `asym:3`,
//! `dense:16`, `random:7`). This module is the one fallible parser
//! behind all of them: every malformed spec — unparseable numbers,
//! out-of-range family sizes — is an `Err` with a one-line message,
//! never a panic, so a server can reject it with an error response and
//! a CLI with a clean exit 2.

use crate::generator::{ScenarioGenerator, MAX_DENSE_NODES, MAX_NODES};
use nplus::sim::Scenario;

/// The scenario grammar, one line per form — interpolated into CLI
/// usage text and server error messages.
pub const SCENARIO_SPEC_HELP: &str = "  three_pairs          the Fig. 3 scenario
  ap_downlink          the Fig. 4 scenario
  pairs:<n>            n generated tx->rx pairs, random 1-4 antennas
  multi_ap:<a>x<c>     a generated cells of one AP + c clients
  hidden:<n>           n generated transmitters sharing one receiver
  asym:<n>             n generated maximally antenna-asymmetric pairs
  dense:<n>            n-node generated mesh (even, <=32; extended map)
  random:<seed>        a random family draw from the generator";

/// Parses one operand of the scenario grammar into a [`Scenario`].
///
/// Generated families are seeded (generator seed 42 unless `random:`
/// supplies one), so equal specs parse to equal scenarios everywhere —
/// the property the server's content-addressed cache keys rely on.
/// `env_capacity` sizes the `random:` family draw to the chosen
/// environment's map ([`ScenarioGenerator::random_for_capacity`]); at
/// the stock 40-slot maps the draw is bit-identical to the classic
/// `random()` stream.
///
/// # Errors
/// A one-line description of the malformed spec (unknown form, number
/// that does not parse, family size outside its documented range).
pub fn parse_scenario_spec(spec: &str, env_capacity: usize) -> Result<Scenario, String> {
    fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
        s.parse()
            .map_err(|_| format!("{what} needs a number, got {s:?}"))
    }
    if let Some(n) = spec.strip_prefix("pairs:") {
        let n: usize = num(n, "pairs:<n>")?;
        if !(1..=MAX_NODES / 2).contains(&n) {
            return Err(format!("pairs:<n> needs 1..={}", MAX_NODES / 2));
        }
        return Ok(ScenarioGenerator::new(42).n_pairs(n));
    }
    if let Some(shape) = spec.strip_prefix("multi_ap:") {
        let (a, c) = shape
            .split_once('x')
            .ok_or_else(|| format!("multi_ap:<aps>x<clients> needs AxC, got {shape:?}"))?;
        let (a, c): (usize, usize) = (num(a, "multi_ap AP count")?, num(c, "multi_ap clients")?);
        if a < 1 || c < 1 || a * (1 + c) > MAX_NODES {
            return Err(format!(
                "multi_ap:<aps>x<clients> needs aps*(1+clients) in 2..={MAX_NODES}"
            ));
        }
        return Ok(ScenarioGenerator::new(42).multi_ap(a, c));
    }
    if let Some(n) = spec.strip_prefix("hidden:") {
        let n: usize = num(n, "hidden:<n>")?;
        if !(2..MAX_NODES).contains(&n) {
            return Err(format!("hidden:<n> needs 2..={}", MAX_NODES - 1));
        }
        return Ok(ScenarioGenerator::new(42).hidden_terminal(n));
    }
    if let Some(n) = spec.strip_prefix("asym:") {
        let n: usize = num(n, "asym:<n>")?;
        if !(1..=MAX_NODES / 2).contains(&n) {
            return Err(format!("asym:<n> needs 1..={}", MAX_NODES / 2));
        }
        return Ok(ScenarioGenerator::new(42).asymmetric_antenna(n));
    }
    if let Some(n) = spec.strip_prefix("dense:") {
        let n: usize = num(n, "dense:<n>")?;
        if !(4..=MAX_DENSE_NODES).contains(&n) || !n.is_multiple_of(2) {
            return Err(format!(
                "dense:<n> needs an even node count in 4..={MAX_DENSE_NODES}"
            ));
        }
        return Ok(ScenarioGenerator::new(42).dense(n));
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        let seed: u64 = num(seed, "random:<seed>")?;
        if env_capacity < 6 {
            return Err(format!(
                "random: needs an environment with >= 6 placement slots, got {env_capacity}"
            ));
        }
        return Ok(ScenarioGenerator::new(seed).random_for_capacity(env_capacity));
    }
    match spec {
        "three_pairs" => Ok(Scenario::three_pairs()),
        "ap_downlink" => Ok(Scenario::ap_downlink()),
        other => Err(format!("unknown scenario spec {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_and_generated_forms_parse() {
        assert_eq!(
            parse_scenario_spec("three_pairs", 40).unwrap().antennas,
            Scenario::three_pairs().antennas
        );
        assert_eq!(
            parse_scenario_spec("ap_downlink", 40).unwrap().flows,
            Scenario::ap_downlink().flows
        );
        let pairs = parse_scenario_spec("pairs:4", 40).unwrap();
        assert_eq!(pairs.antennas.len(), 8);
        assert_eq!(pairs.flows.len(), 4);
        // Generated specs are deterministic: same text, same scenario.
        assert_eq!(
            parse_scenario_spec("pairs:4", 40).unwrap().antennas,
            pairs.antennas
        );
        let ap = parse_scenario_spec("multi_ap:2x3", 40).unwrap();
        assert_eq!(ap.antennas.len(), 8);
        assert!(parse_scenario_spec("hidden:3", 40).is_ok());
        assert!(parse_scenario_spec("asym:2", 40).is_ok());
        assert!(parse_scenario_spec("dense:16", 40).is_ok());
        // random: sizes itself to the environment capacity.
        let r = parse_scenario_spec("random:7", 8).unwrap();
        assert!(r.antennas.len() <= 8);
    }

    #[test]
    fn every_malformed_spec_is_an_err_not_a_panic() {
        for bad in [
            "pairs:",
            "pairs:zero",
            "pairs:0",
            "pairs:999",
            "multi_ap:3",
            "multi_ap:AxB",
            "multi_ap:9x9",
            "hidden:1",
            "hidden:99",
            "hidden:abc",
            "asym:0",
            "asym:9",
            "dense:3",
            "dense:7",
            "dense:34",
            "random:",
            "random:x",
            "warehouse",
            "",
        ] {
            let err = parse_scenario_spec(bad, 40).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
        // Tiny environments reject the random family cleanly too.
        assert!(parse_scenario_spec("random:1", 5).is_err());
        // Every parsed scenario passes structural validation.
        for good in ["pairs:2", "multi_ap:1x2", "hidden:4", "asym:3", "dense:8"] {
            parse_scenario_spec(good, 40)
                .unwrap()
                .validate()
                .unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }
}
