//! Textual scenario-spec parsing shared by every served front-end.
//!
//! The `sweep` CLI, the `sweep-server` wire protocol and the
//! `sweep-load` generator all accept the same compact scenario grammar
//! (`three_pairs`, `pairs:4`, `multi_ap:2x3`, `hidden:5`, `asym:3`,
//! `dense:16`, `random:7`, `city:1024`), optionally wrapped in a
//! traffic-model prefix (`load:poisson:0.5/city:64`). This module is
//! the one fallible parser behind all of them: every malformed spec —
//! unparseable numbers, out-of-range family sizes, a city too large
//! for the chosen environment — is an `Err` with a one-line message,
//! never a panic, so a server can reject it with an error response and
//! a CLI with a clean exit 2.

use crate::generator::{ScenarioGenerator, MAX_DENSE_NODES, MAX_NODES};
use nplus::sim::{Flow, Scenario, TrafficModel};
use nplus_channel::placement::MULTI_CELL_GROUP;

/// The scenario grammar, one line per form — interpolated into CLI
/// usage text and server error messages.
pub const SCENARIO_SPEC_HELP: &str = "  three_pairs          the Fig. 3 scenario
  ap_downlink          the Fig. 4 scenario
  pairs:<n>            n generated tx->rx pairs, random 1-4 antennas
  multi_ap:<a>x<c>     a generated cells of one AP + c clients
  hidden:<n>           n generated transmitters sharing one receiver
  asym:<n>             n generated maximally antenna-asymmetric pairs
  dense:<n>            n-node generated mesh (even, <=32; extended map)
  random:<seed>        a random family draw from the generator
  city:<n>             n-node procedural city (multiple of 8; multi_cell env)
  load:<model>/<spec>  any form above under a traffic model
                       (saturated | poisson:<mean> | bursty:<on>x<off>)";

/// A fully parsed scenario spec: the scenario itself plus the traffic
/// model a `load:` prefix requested (`None` = the caller's default,
/// i.e. saturated).
#[derive(Debug, Clone)]
pub struct ParsedSpec {
    /// The parsed scenario.
    pub scenario: Scenario,
    /// Traffic model from a `load:<model>/` prefix, if one was given.
    pub traffic: Option<TrafficModel>,
}

/// Deterministic procedural city: `n_nodes / 8` cells of one 4-antenna
/// AP plus seven stations alternating 1 and 2 antennas. Station flows
/// cycle downlink, downlink, uplink by station index, so roughly a
/// third of the traffic is station→AP. Zero RNG — the scenario is a
/// pure function of `n_nodes`, which keeps equal `city:` specs equal
/// everywhere (the server's content-addressed cache relies on that).
///
/// Placement comes from the environment's testbed (the `multi_cell`
/// grid places node `8k` at cell `k`'s centre), so this scenario only
/// fits environments with at least `n_nodes` slots.
///
/// # Panics
/// If `n_nodes` is zero or not a multiple of [`MULTI_CELL_GROUP`] (the
/// spec parser validates first; direct callers must too).
pub fn city_scenario(n_nodes: usize) -> Scenario {
    assert!(
        n_nodes > 0 && n_nodes.is_multiple_of(MULTI_CELL_GROUP),
        "city_scenario: n_nodes must be a positive multiple of {MULTI_CELL_GROUP}, got {n_nodes}"
    );
    let mut antennas = Vec::with_capacity(n_nodes);
    let mut flows = Vec::new();
    for cell in 0..n_nodes / MULTI_CELL_GROUP {
        let ap = cell * MULTI_CELL_GROUP;
        antennas.push(4);
        for j in 0..MULTI_CELL_GROUP - 1 {
            let sta = ap + 1 + j;
            antennas.push(1 + (sta % 2));
            if j % 3 == 0 {
                flows.push(Flow { tx: sta, rx: ap });
            } else {
                flows.push(Flow { tx: ap, rx: sta });
            }
        }
    }
    Scenario { antennas, flows }
}

/// Parses one operand of the scenario grammar into a [`Scenario`].
///
/// Generated families are seeded (generator seed 42 unless `random:`
/// supplies one), so equal specs parse to equal scenarios everywhere —
/// the property the server's content-addressed cache keys rely on.
/// `env_capacity` sizes the `random:` family draw to the chosen
/// environment's map ([`ScenarioGenerator::random_for_capacity`]); at
/// the stock 40-slot maps the draw is bit-identical to the classic
/// `random()` stream.
///
/// # Errors
/// A one-line description of the malformed spec (unknown form, number
/// that does not parse, family size outside its documented range).
pub fn parse_scenario_spec(spec: &str, env_capacity: usize) -> Result<Scenario, String> {
    fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
        s.parse()
            .map_err(|_| format!("{what} needs a number, got {s:?}"))
    }
    if let Some(n) = spec.strip_prefix("pairs:") {
        let n: usize = num(n, "pairs:<n>")?;
        if !(1..=MAX_NODES / 2).contains(&n) {
            return Err(format!("pairs:<n> needs 1..={}", MAX_NODES / 2));
        }
        return Ok(ScenarioGenerator::new(42).n_pairs(n));
    }
    if let Some(shape) = spec.strip_prefix("multi_ap:") {
        let (a, c) = shape
            .split_once('x')
            .ok_or_else(|| format!("multi_ap:<aps>x<clients> needs AxC, got {shape:?}"))?;
        let (a, c): (usize, usize) = (num(a, "multi_ap AP count")?, num(c, "multi_ap clients")?);
        if a < 1 || c < 1 || a * (1 + c) > MAX_NODES {
            return Err(format!(
                "multi_ap:<aps>x<clients> needs aps*(1+clients) in 2..={MAX_NODES}"
            ));
        }
        return Ok(ScenarioGenerator::new(42).multi_ap(a, c));
    }
    if let Some(n) = spec.strip_prefix("hidden:") {
        let n: usize = num(n, "hidden:<n>")?;
        if !(2..MAX_NODES).contains(&n) {
            return Err(format!("hidden:<n> needs 2..={}", MAX_NODES - 1));
        }
        return Ok(ScenarioGenerator::new(42).hidden_terminal(n));
    }
    if let Some(n) = spec.strip_prefix("asym:") {
        let n: usize = num(n, "asym:<n>")?;
        if !(1..=MAX_NODES / 2).contains(&n) {
            return Err(format!("asym:<n> needs 1..={}", MAX_NODES / 2));
        }
        return Ok(ScenarioGenerator::new(42).asymmetric_antenna(n));
    }
    if let Some(n) = spec.strip_prefix("dense:") {
        let n: usize = num(n, "dense:<n>")?;
        if !(4..=MAX_DENSE_NODES).contains(&n) || !n.is_multiple_of(2) {
            return Err(format!(
                "dense:<n> needs an even node count in 4..={MAX_DENSE_NODES}"
            ));
        }
        return Ok(ScenarioGenerator::new(42).dense(n));
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        let seed: u64 = num(seed, "random:<seed>")?;
        if env_capacity < 6 {
            return Err(format!(
                "random: needs an environment with >= 6 placement slots, got {env_capacity}"
            ));
        }
        return Ok(ScenarioGenerator::new(seed).random_for_capacity(env_capacity));
    }
    if let Some(n) = spec.strip_prefix("city:") {
        let n: usize = num(n, "city:<n>")?;
        if n == 0 || !n.is_multiple_of(MULTI_CELL_GROUP) {
            return Err(format!(
                "city:<n> needs a positive multiple of {MULTI_CELL_GROUP}, got {n}"
            ));
        }
        if n > env_capacity {
            return Err(format!(
                "city:{n} does not fit the environment's {env_capacity} placement slots \
                 (try --env multi_cell)"
            ));
        }
        return Ok(city_scenario(n));
    }
    if spec.starts_with("load:") {
        return Err(
            "load:<model>/<spec> carries a traffic model; this front-end only accepts \
             plain scenario specs"
                .to_string(),
        );
    }
    match spec {
        "three_pairs" => Ok(Scenario::three_pairs()),
        "ap_downlink" => Ok(Scenario::ap_downlink()),
        other => Err(format!("unknown scenario spec {other:?}")),
    }
}

/// Parses the full spec grammar: everything [`parse_scenario_spec`]
/// accepts, plus an optional `load:<model>/` traffic prefix
/// (`load:poisson:0.5/city:64`, `load:bursty:3x9/pairs:4`,
/// `load:saturated/dense:16`). The model names and parameter syntax
/// are exactly [`TrafficModel`]'s spec strings, so the wrapped form
/// round-trips through `CanonicalSpec` hashing unchanged.
///
/// # Errors
/// A one-line description of the malformed spec — from the scenario
/// grammar or from the traffic-model parse.
pub fn parse_spec(spec: &str, env_capacity: usize) -> Result<ParsedSpec, String> {
    if let Some(rest) = spec.strip_prefix("load:") {
        // The model's own parameters may contain `:` (poisson:0.5), so
        // the scenario divider is `/` — split once, model first.
        let (model, inner) = rest.split_once('/').ok_or_else(|| {
            format!("load:<model>/<spec> needs a '/' before the scenario, got {rest:?}")
        })?;
        let traffic: TrafficModel = model.parse()?;
        if inner.starts_with("load:") {
            return Err(format!("load: cannot nest: {spec:?}"));
        }
        let scenario = parse_scenario_spec(inner, env_capacity)?;
        return Ok(ParsedSpec {
            scenario,
            traffic: Some(traffic),
        });
    }
    Ok(ParsedSpec {
        scenario: parse_scenario_spec(spec, env_capacity)?,
        traffic: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_and_generated_forms_parse() {
        assert_eq!(
            parse_scenario_spec("three_pairs", 40).unwrap().antennas,
            Scenario::three_pairs().antennas
        );
        assert_eq!(
            parse_scenario_spec("ap_downlink", 40).unwrap().flows,
            Scenario::ap_downlink().flows
        );
        let pairs = parse_scenario_spec("pairs:4", 40).unwrap();
        assert_eq!(pairs.antennas.len(), 8);
        assert_eq!(pairs.flows.len(), 4);
        // Generated specs are deterministic: same text, same scenario.
        assert_eq!(
            parse_scenario_spec("pairs:4", 40).unwrap().antennas,
            pairs.antennas
        );
        let ap = parse_scenario_spec("multi_ap:2x3", 40).unwrap();
        assert_eq!(ap.antennas.len(), 8);
        assert!(parse_scenario_spec("hidden:3", 40).is_ok());
        assert!(parse_scenario_spec("asym:2", 40).is_ok());
        assert!(parse_scenario_spec("dense:16", 40).is_ok());
        // random: sizes itself to the environment capacity.
        let r = parse_scenario_spec("random:7", 8).unwrap();
        assert!(r.antennas.len() <= 8);
    }

    #[test]
    fn city_specs_build_deterministic_cells() {
        let city = parse_scenario_spec("city:16", 4096).unwrap();
        assert_eq!(city.antennas.len(), 16);
        assert_eq!(city.flows.len(), 14); // 7 station flows per cell
                                          // Cell structure: AP at 8k with 4 antennas, stations alternate.
        assert_eq!(city.antennas[0], 4);
        assert_eq!(city.antennas[8], 4);
        assert_eq!(&city.antennas[1..8], &[2, 1, 2, 1, 2, 1, 2]);
        // Stations j=0,3,6 in each cell send uplink, the rest downlink.
        let uplinks = city.flows.iter().filter(|f| f.rx.is_multiple_of(8)).count();
        assert_eq!(uplinks, 6);
        city.validate().unwrap();
        // Pure function of n: equal specs are equal scenarios.
        let again = parse_scenario_spec("city:16", 4096).unwrap();
        assert_eq!(city.antennas, again.antennas);
        assert_eq!(city.flows, again.flows);
        // A thousand-node city is valid and sized as promised.
        let big = parse_scenario_spec("city:1024", 4096).unwrap();
        assert_eq!(big.antennas.len(), 1024);
        big.validate().unwrap();
    }

    #[test]
    fn load_prefix_parses_traffic_and_inner_scenario() {
        let p = parse_spec("load:poisson:0.5/city:16", 4096).unwrap();
        assert_eq!(p.scenario.antennas.len(), 16);
        assert_eq!(
            p.traffic,
            Some(TrafficModel::Poisson {
                mean_per_round: 0.5
            })
        );
        let p = parse_spec("load:bursty:3x9/pairs:2", 40).unwrap();
        assert_eq!(
            p.traffic,
            Some(TrafficModel::Bursty {
                mean_on_rounds: 3.0,
                mean_off_rounds: 9.0
            })
        );
        let p = parse_spec("load:saturated/three_pairs", 40).unwrap();
        assert_eq!(p.traffic, Some(TrafficModel::Saturated));
        // No prefix: plain scenarios pass through with traffic = None.
        let p = parse_spec("dense:8", 40).unwrap();
        assert!(p.traffic.is_none());
        assert_eq!(p.scenario.antennas.len(), 8);
    }

    #[test]
    fn every_malformed_spec_is_an_err_not_a_panic() {
        for bad in [
            "pairs:",
            "pairs:zero",
            "pairs:0",
            "pairs:999",
            "multi_ap:3",
            "multi_ap:AxB",
            "multi_ap:9x9",
            "hidden:1",
            "hidden:99",
            "hidden:abc",
            "asym:0",
            "asym:9",
            "dense:3",
            "dense:7",
            "dense:34",
            "random:",
            "random:x",
            "city:",
            "city:0",
            "city:7",
            "city:12",
            "warehouse",
            "",
        ] {
            let err = parse_scenario_spec(bad, 40).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
        // Tiny environments reject the random family cleanly too.
        assert!(parse_scenario_spec("random:1", 5).is_err());
        // A city larger than the environment's map is an Err, not a
        // panic deep inside placement.
        assert!(parse_scenario_spec("city:48", 40).is_err());
        assert!(parse_scenario_spec("city:8", 40).is_ok());
        // load: belongs to parse_spec; the plain parser refuses it.
        assert!(parse_scenario_spec("load:poisson:0.5/pairs:2", 40).is_err());
        // Malformed load: wrappers fail with one-line errors too.
        for bad in [
            "load:poisson:0.5",                      // no '/<spec>'
            "load:/pairs:2",                         // empty model
            "load:cbr:4/pairs:2",                    // unknown model
            "load:poisson:0/pairs:2",                // invalid parameter
            "load:poisson:0.5/",                     // empty inner spec
            "load:poisson:0.5/warehouse",            // unknown inner spec
            "load:saturated/load:saturated/pairs:2", // nesting
        ] {
            let err = parse_spec(bad, 40).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
        // Every parsed scenario passes structural validation.
        for good in ["pairs:2", "multi_ap:1x2", "hidden:4", "asym:3", "dense:8"] {
            parse_scenario_spec(good, 40)
                .unwrap()
                .validate()
                .unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }
}
