//! Proptest strategies over the linalg types, shared by the property
//! suites so each one stops redefining its own.

use nplus_linalg::{c64, CMatrix, CVector, Complex64};
use proptest::prelude::*;

/// A bounded complex scalar with re, im ∈ (-1, 1).
pub fn complex() -> impl Strategy<Value = Complex64> {
    (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| c64(re, im))
}

/// A complex matrix with the given shape.
pub fn complex_matrix(rows: usize, cols: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(complex(), rows * cols)
        .prop_map(move |data| CMatrix::from_vec(rows, cols, data))
}

/// A complex vector with the given dimension.
pub fn complex_vector(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec(complex(), n).prop_map(CVector::from_vec)
}
