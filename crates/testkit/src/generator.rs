//! Seeded random scenario generation.
//!
//! The canonical builders in [`crate::scenario`] reproduce the paper's
//! exact figures; large Monte-Carlo sweeps additionally need *families*
//! of scenarios — random pair counts, antenna mixes and multi-AP traffic
//! shapes — drawn reproducibly from a seed. [`ScenarioGenerator`] covers
//! the space the sweep binaries explore: N contending pairs, multi-AP
//! downlink cells, hidden-terminal stars, maximally antenna-asymmetric
//! pairs and dense many-pair meshes, with 1–4 antennas per node.
//! Families up to [`MAX_NODES`] nodes fit the paper's 20-location
//! testbed map; the dense family goes up to [`MAX_DENSE_NODES`] nodes
//! and places on `Testbed::sigcomm11_extended()` (which
//! `scenario::build_scenario` selects automatically by node count).

use nplus::sim::{Flow, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest node count of the standard families (the paper's testbed map
/// has 20 candidate locations; 16 leaves placement diversity).
pub const MAX_NODES: usize = 16;

/// Largest node count of the dense family (placed on the 40-location
/// `Testbed::sigcomm11_extended()` map, which
/// `scenario::build_scenario` selects automatically by node count; 32
/// leaves placement diversity there).
pub const MAX_DENSE_NODES: usize = 32;

/// Largest antenna count the generator draws per node.
pub const MAX_ANTENNAS: usize = 4;

/// Seeded source of random [`Scenario`]s.
///
/// Every draw consumes the generator's own RNG stream, so a fixed seed
/// reproduces the same sequence of scenarios regardless of what the
/// caller does with them.
#[derive(Debug)]
pub struct ScenarioGenerator {
    rng: StdRng,
}

impl ScenarioGenerator {
    /// Creates a generator with its own deterministic RNG stream.
    pub fn new(seed: u64) -> Self {
        ScenarioGenerator {
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)),
        }
    }

    /// `n_pairs` transmitter→receiver pairs with independently drawn
    /// antenna counts in `1..=MAX_ANTENNAS` (the Fig. 3 shape at
    /// arbitrary size). Node order: tx1, rx1, tx2, rx2, …
    pub fn n_pairs(&mut self, n_pairs: usize) -> Scenario {
        assert!(n_pairs >= 1, "need at least one pair");
        assert!(2 * n_pairs <= MAX_NODES, "too many nodes for the testbed");
        let mut antennas = Vec::with_capacity(2 * n_pairs);
        let mut flows = Vec::with_capacity(n_pairs);
        for p in 0..n_pairs {
            antennas.push(self.rng.gen_range(1..=MAX_ANTENNAS));
            antennas.push(self.rng.gen_range(1..=MAX_ANTENNAS));
            flows.push(Flow {
                tx: 2 * p,
                rx: 2 * p + 1,
            });
        }
        Scenario { antennas, flows }
    }

    /// A random pair scenario: 2–8 pairs, random antenna mix.
    pub fn random_pairs(&mut self) -> Scenario {
        let n_pairs = self.rng.gen_range(2..=MAX_NODES / 2);
        self.n_pairs(n_pairs)
    }

    /// `n_aps` downlink cells: each AP (2–4 antennas) serves
    /// `clients_per_ap` clients (1–4 antennas each) with one flow per
    /// client — the Fig. 4 shape generalized (multi-client APs are the
    /// traffic shape multi-user beamforming baselines are evaluated on).
    /// Node order per cell: AP, c1, …, c`clients_per_ap`.
    pub fn multi_ap(&mut self, n_aps: usize, clients_per_ap: usize) -> Scenario {
        assert!(n_aps >= 1 && clients_per_ap >= 1, "empty cell");
        assert!(
            n_aps * (1 + clients_per_ap) <= MAX_NODES,
            "too many nodes for the testbed"
        );
        let mut antennas = Vec::new();
        let mut flows = Vec::new();
        for _ in 0..n_aps {
            let ap = antennas.len();
            antennas.push(self.rng.gen_range(2..=MAX_ANTENNAS));
            for _ in 0..clients_per_ap {
                let client = antennas.len();
                antennas.push(self.rng.gen_range(1..=MAX_ANTENNAS));
                flows.push(Flow { tx: ap, rx: client });
            }
        }
        Scenario { antennas, flows }
    }

    /// A hidden-terminal star: `n_txs` transmitters (1–4 antennas each)
    /// all sending to one shared multi-antenna receiver. Under random
    /// placement the transmitters frequently cannot decode each other's
    /// headers while still interfering at the shared receiver — the
    /// classic hidden-terminal stress for carrier sense and the
    /// secondary-contention path. Node order: rx, tx1, …, tx`n_txs`.
    pub fn hidden_terminal(&mut self, n_txs: usize) -> Scenario {
        assert!(n_txs >= 2, "a hidden-terminal star needs >= 2 transmitters");
        assert!(n_txs < MAX_NODES, "too many nodes for the testbed");
        let mut antennas = Vec::with_capacity(n_txs + 1);
        // The shared receiver needs spatial room: 2–4 antennas.
        antennas.push(self.rng.gen_range(2..=MAX_ANTENNAS));
        let mut flows = Vec::with_capacity(n_txs);
        for t in 0..n_txs {
            antennas.push(self.rng.gen_range(1..=MAX_ANTENNAS));
            flows.push(Flow { tx: t + 1, rx: 0 });
        }
        Scenario { antennas, flows }
    }

    /// `n_pairs` maximally antenna-asymmetric pairs: odd pairs put all
    /// the antennas on the transmitter (4→1), even pairs on the receiver
    /// (1→4) — the extremes of the paper's heterogeneity axis, where
    /// stream allocation is capacity-limited on one side. Node order:
    /// tx1, rx1, tx2, rx2, …
    pub fn asymmetric_antenna(&mut self, n_pairs: usize) -> Scenario {
        assert!(n_pairs >= 1, "need at least one pair");
        assert!(2 * n_pairs <= MAX_NODES, "too many nodes for the testbed");
        let mut antennas = Vec::with_capacity(2 * n_pairs);
        let mut flows = Vec::with_capacity(n_pairs);
        for p in 0..n_pairs {
            let (tx_ants, rx_ants) = if p % 2 == 0 {
                (MAX_ANTENNAS, 1)
            } else {
                (1, MAX_ANTENNAS)
            };
            antennas.push(tx_ants);
            antennas.push(rx_ants);
            flows.push(Flow {
                tx: 2 * p,
                rx: 2 * p + 1,
            });
        }
        Scenario { antennas, flows }
    }

    /// A dense mesh of `n_nodes / 2` contending pairs (`n_nodes` even,
    /// up to [`MAX_DENSE_NODES`]): the contention-heavy regime where
    /// Monte-Carlo sweeps are the most compute-bound and the parallel
    /// sweep engine earns its keep. Scenarios above the paper map's
    /// capacity place on the extended testbed. Node order as
    /// [`n_pairs`](Self::n_pairs).
    pub fn dense(&mut self, n_nodes: usize) -> Scenario {
        assert!(
            n_nodes >= 4 && n_nodes.is_multiple_of(2),
            "dense needs an even node count >= 4"
        );
        assert!(
            n_nodes <= MAX_DENSE_NODES,
            "too many nodes for the extended testbed"
        );
        let mut antennas = Vec::with_capacity(n_nodes);
        let mut flows = Vec::with_capacity(n_nodes / 2);
        for p in 0..n_nodes / 2 {
            antennas.push(self.rng.gen_range(1..=MAX_ANTENNAS));
            antennas.push(self.rng.gen_range(1..=MAX_ANTENNAS));
            flows.push(Flow {
                tx: 2 * p,
                rx: 2 * p + 1,
            });
        }
        Scenario { antennas, flows }
    }

    /// A random scenario of any family: contending pairs, multi-AP
    /// downlink cells, hidden-terminal stars, asymmetric pairs or a
    /// dense mesh — the diversity the parallel sweep engine is fed.
    /// Sized for the stock maps (up to [`MAX_DENSE_NODES`] nodes);
    /// identical draws to
    /// [`random_for_capacity(MAX_DENSE_NODES)`](Self::random_for_capacity).
    pub fn random(&mut self) -> Scenario {
        self.random_for_capacity(MAX_DENSE_NODES)
    }

    /// [`random`](Self::random) sized for an environment with
    /// `capacity` placement slots: every family's node count stays
    /// within `capacity`, so the draw places on any
    /// [`ChannelEnvironment`](nplus_channel::environment::ChannelEnvironment)
    /// whose [`capacity()`](nplus_channel::environment::ChannelEnvironment::capacity)
    /// is at least that. Needs `capacity >= 6` (the smallest family
    /// shapes). At `capacity = MAX_DENSE_NODES` the draws are
    /// bit-identical to the classic [`random`](Self::random) stream.
    pub fn random_for_capacity(&mut self, capacity: usize) -> Scenario {
        assert!(capacity >= 6, "need at least 6 placement slots");
        let std_cap = capacity.min(MAX_NODES);
        match self.rng.gen_range(0u8..5) {
            0 => {
                let n_pairs = self.rng.gen_range(2..=std_cap / 2);
                self.n_pairs(n_pairs)
            }
            1 => {
                let max_aps = (std_cap / 2).min(4); // each cell needs >= 2 nodes
                let n_aps: usize = self.rng.gen_range(1..=max_aps);
                let max_clients = (std_cap / n_aps).saturating_sub(1).clamp(1, 3);
                let clients = self.rng.gen_range(1..=max_clients);
                self.multi_ap(n_aps, clients)
            }
            2 => {
                let n_txs = self.rng.gen_range(2..=(std_cap - 1).min(6));
                self.hidden_terminal(n_txs)
            }
            3 => {
                let n_pairs = self.rng.gen_range(2..=std_cap / 2);
                self.asymmetric_antenna(n_pairs)
            }
            _ => {
                let dense_cap = capacity.min(MAX_DENSE_NODES);
                if dense_cap / 2 < 5 {
                    // Too small a map for the dense regime: fall back to
                    // the largest pair mesh that fits.
                    let n_pairs = self.rng.gen_range(2..=std_cap / 2);
                    return self.n_pairs(n_pairs);
                }
                let n_pairs = self.rng.gen_range(5..=dense_cap / 2);
                self.dense(2 * n_pairs)
            }
        }
    }

    /// [`random_for_capacity`](Self::random_for_capacity) sized for a
    /// propagation environment's own placement capacity.
    pub fn random_for(
        &mut self,
        env: &dyn nplus_channel::environment::ChannelEnvironment,
    ) -> Scenario {
        self.random_for_capacity(env.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_valid(s: &Scenario) {
        assert!(s.antennas.len() <= MAX_DENSE_NODES);
        assert!(!s.flows.is_empty());
        for &a in &s.antennas {
            assert!((1..=MAX_ANTENNAS).contains(&a), "antennas {a}");
        }
        for f in &s.flows {
            assert!(f.tx < s.antennas.len());
            assert!(f.rx < s.antennas.len());
            assert_ne!(f.tx, f.rx);
        }
    }

    #[test]
    fn pairs_shape() {
        let mut g = ScenarioGenerator::new(1);
        let s = g.n_pairs(5);
        assert_eq!(s.antennas.len(), 10);
        assert_eq!(s.flows.len(), 5);
        check_valid(&s);
        assert_eq!(s.transmitters(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn multi_ap_shape() {
        let mut g = ScenarioGenerator::new(2);
        let s = g.multi_ap(2, 3);
        assert_eq!(s.antennas.len(), 8);
        assert_eq!(s.flows.len(), 6);
        check_valid(&s);
        // Both APs transmit, all flows leave an AP.
        assert_eq!(s.transmitters(), vec![0, 4]);
        assert_eq!(s.flows_of(0), vec![0, 1, 2]);
        for ap in [0usize, 4] {
            assert!(s.antennas[ap] >= 2, "AP must have multiple antennas");
        }
    }

    #[test]
    fn hidden_terminal_shape() {
        let mut g = ScenarioGenerator::new(5);
        let s = g.hidden_terminal(4);
        assert_eq!(s.antennas.len(), 5);
        assert_eq!(s.flows.len(), 4);
        check_valid(&s);
        // Every flow targets the shared receiver; every tx is distinct.
        assert!(s.flows.iter().all(|f| f.rx == 0));
        assert_eq!(s.transmitters(), vec![1, 2, 3, 4]);
        assert!(s.antennas[0] >= 2, "shared receiver needs spatial room");
    }

    #[test]
    fn asymmetric_antenna_shape() {
        let mut g = ScenarioGenerator::new(6);
        let s = g.asymmetric_antenna(3);
        assert_eq!(s.antennas.len(), 6);
        check_valid(&s);
        // Pairs alternate 4→1 and 1→4.
        assert_eq!(s.antennas, vec![4, 1, 1, 4, 4, 1]);
        for f in &s.flows {
            let (a, b) = (s.antennas[f.tx], s.antennas[f.rx]);
            assert_eq!(a.max(b), MAX_ANTENNAS);
            assert_eq!(a.min(b), 1);
        }
    }

    #[test]
    fn dense_shape() {
        let mut g = ScenarioGenerator::new(7);
        let s = g.dense(MAX_DENSE_NODES);
        assert_eq!(s.antennas.len(), 32);
        assert_eq!(s.flows.len(), 16);
        check_valid(&s);
        assert_eq!(s.transmitters().len(), 16);
        // And it actually places + simulates on the extended testbed.
        let built = crate::scenario::build_scenario(g.dense(24), 13);
        assert_eq!(built.topology.nodes.len(), 24);
        let cfg = nplus::sim::SimConfig {
            rounds: 1,
            ..Default::default()
        };
        let r = built.run_with(nplus::sim::Protocol::Dot11n, &cfg, 3);
        assert!(r.total_mbps.is_finite());
    }

    #[test]
    fn random_for_capacity_respects_the_cap_and_matches_random() {
        // random() is *defined* as random_for_capacity(MAX_DENSE_NODES),
        // so comparing the two streams alone would be tautological: the
        // real pin is the golden draws below — the first three seed-11
        // scenarios of the classic stream. Any change to the family
        // dispatch or gen_range bounds breaks these literals.
        type Golden = (&'static [usize], &'static [(usize, usize)]);
        let goldens: [Golden; 3] = [
            (
                &[1, 4, 2, 1, 3, 3, 2, 4, 2, 3, 3, 1, 1, 1],
                &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11), (12, 13)],
            ),
            (
                &[
                    1, 2, 4, 3, 1, 3, 3, 1, 1, 4, 4, 3, 4, 1, 1, 3, 3, 4, 1, 2, 1, 4, 3, 2,
                ],
                &[
                    (0, 1),
                    (2, 3),
                    (4, 5),
                    (6, 7),
                    (8, 9),
                    (10, 11),
                    (12, 13),
                    (14, 15),
                    (16, 17),
                    (18, 19),
                    (20, 21),
                    (22, 23),
                ],
            ),
            (
                &[
                    4, 3, 1, 2, 3, 2, 1, 4, 2, 1, 2, 1, 2, 2, 1, 4, 1, 3, 2, 1, 1, 4, 1, 1,
                ],
                &[
                    (0, 1),
                    (2, 3),
                    (4, 5),
                    (6, 7),
                    (8, 9),
                    (10, 11),
                    (12, 13),
                    (14, 15),
                    (16, 17),
                    (18, 19),
                    (20, 21),
                    (22, 23),
                ],
            ),
        ];
        let mut a = ScenarioGenerator::new(11);
        let mut b = ScenarioGenerator::new(11);
        for i in 0..12 {
            let x = a.random();
            let y = b.random_for_capacity(MAX_DENSE_NODES);
            if let Some((antennas, flows)) = goldens.get(i) {
                assert_eq!(
                    &x.antennas, antennas,
                    "draw {i} diverged from the classic stream"
                );
                let got: Vec<(usize, usize)> = x.flows.iter().map(|f| (f.tx, f.rx)).collect();
                assert_eq!(&got, flows, "draw {i} diverged from the classic stream");
            }
            assert_eq!(x.antennas, y.antennas);
            assert_eq!(x.flows, y.flows);
        }
        // Every capped draw fits the cap.
        for capacity in [6usize, 8, 12, 20, 40] {
            let mut g = ScenarioGenerator::new(7);
            for _ in 0..30 {
                let s = g.random_for_capacity(capacity);
                check_valid(&s);
                assert!(
                    s.antennas.len() <= capacity,
                    "capacity {capacity}: drew {} nodes",
                    s.antennas.len()
                );
            }
        }
        // And the environment-aware form sizes to the environment.
        use nplus_channel::environment::OUTDOOR_FREE_SPACE;
        let mut g = ScenarioGenerator::new(3);
        for _ in 0..10 {
            let s = g.random_for(&OUTDOOR_FREE_SPACE);
            assert!(s.antennas.len() <= 40);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut g1 = ScenarioGenerator::new(9);
        let mut g2 = ScenarioGenerator::new(9);
        for _ in 0..10 {
            let a = g1.random();
            let b = g2.random();
            assert_eq!(a.antennas, b.antennas);
            assert_eq!(a.flows, b.flows);
        }
    }

    #[test]
    fn random_scenarios_fit_and_simulate() {
        let mut g = ScenarioGenerator::new(33);
        for i in 0..20 {
            let s = g.random();
            check_valid(&s);
            let _ = i;
        }
        // Smoke: a small generated scenario actually runs end to end.
        let s = ScenarioGenerator::new(4).n_pairs(2);
        let built = crate::scenario::build_scenario(s, 4);
        let cfg = nplus::sim::SimConfig {
            rounds: 2,
            ..Default::default()
        };
        let r = built.run_with(nplus::sim::Protocol::NPlus, &cfg, 11);
        assert!(r.total_mbps.is_finite());
    }
}
