//! Hardware impairment model.
//!
//! On real radios, nulling and alignment never cancel interference
//! perfectly (paper §4, §6.2): the transmitter's knowledge of the channel
//! is imperfect and the transmit chain itself is noisy. The paper measures
//! a cancellation depth of 25–27 dB and residual SNR losses of 0.8 dB
//! (nulling) / 1.3 dB (alignment). This module models the three physical
//! sources of that residual:
//!
//! 1. **Channel estimation noise** — estimates from a preamble at SNR γ
//!    carry error variance ∝ 1/γ per subcarrier.
//! 2. **Reciprocity calibration error** — the forward channel is inferred
//!    from the reverse one; hardware Tx/Rx chain asymmetry is calibrated
//!    offline (per \[4,14\] in the paper) but a small multiplicative
//!    residual remains.
//! 3. **Transmit EVM** — amplifier/DAC non-linearities add a noise floor
//!    proportional to the transmitted power, independent of precoding.
//!
//! The alignment path additionally estimates the receiver's unwanted
//! subspace, which is why alignment shows a larger residual than nulling —
//! our model reproduces this because the alignment constraint composes
//! *two* estimated quantities (`U^⊥` and `H`).

use crate::pathloss::sample_normal;
use nplus_linalg::{c64, CMatrix, CMatrixSoA, Complex64};
use rand::Rng;

/// Radio hardware quality knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareProfile {
    /// Transmit error-vector magnitude floor, dB relative to the signal
    /// (−32 dB is typical of WLAN-class radios and yields the paper's
    /// 25–27 dB cancellation depth together with estimation error).
    pub tx_evm_db: f64,
    /// Std-dev of the residual multiplicative reciprocity calibration
    /// error per antenna pair (complex, relative).
    pub calibration_error_std: f64,
    /// Effective SNR (dB) of the preamble-based channel estimator; the
    /// per-subcarrier estimate carries complex Gaussian error with power
    /// `|h|^2 / 10^(est_snr/10)`.
    pub estimation_snr_db: f64,
}

impl Default for HardwareProfile {
    fn default() -> Self {
        Self::wlan_class()
    }
}

/// An idealized profile with no impairments — useful for verifying that
/// the precoder achieves numerically perfect nulls when given the truth.
pub const IDEAL_HARDWARE: HardwareProfile = HardwareProfile {
    tx_evm_db: -300.0,
    calibration_error_std: 0.0,
    estimation_snr_db: 300.0,
};

impl HardwareProfile {
    /// The paper's USRP2/WLAN-class radio quality (the crate-wide
    /// default): together with estimation error it yields the measured
    /// 25–27 dB cancellation depth. `const` so environments can hold
    /// it in statics.
    pub const fn wlan_class() -> Self {
        HardwareProfile {
            tx_evm_db: -32.0,
            calibration_error_std: 0.02,
            estimation_snr_db: 30.0,
        }
    }

    /// A worn/stressed radio: 10 dB worse EVM floor, 3× the calibration
    /// residual, 10 dB worse estimator — dropping
    /// [`expected_cancellation_depth_db`](Self::expected_cancellation_depth_db)
    /// to ~17 dB. The `degraded_hardware` environment uses it to stress
    /// the §4 cancellation-depth assumption `L`.
    pub const fn degraded() -> Self {
        HardwareProfile {
            tx_evm_db: -22.0,
            calibration_error_std: 0.06,
            estimation_snr_db: 20.0,
        }
    }

    /// Linear amplitude of the transmit EVM floor.
    pub fn tx_evm_amplitude(&self) -> f64 {
        10f64.powf(self.tx_evm_db / 20.0)
    }

    /// Perturbs a true channel matrix into what a node *believes* after
    /// estimating it from a preamble: adds complex Gaussian estimation
    /// noise per entry, scaled to the entry's magnitude.
    pub fn corrupt_estimate<R: Rng>(&self, h: &CMatrix, rng: &mut R) -> CMatrix {
        let err_amp = 10f64.powf(-self.estimation_snr_db / 20.0);
        let mut out = h.clone();
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                let scale = h[(i, j)].abs() * err_amp / 2f64.sqrt();
                let e = c64(sample_normal(rng), sample_normal(rng)).scale(scale);
                out[(i, j)] += e;
            }
        }
        out
    }

    /// Perturbs a reverse-channel-derived estimate with the calibration
    /// residual: a per-entry multiplicative complex error
    /// `(1 + ε)`, `ε ~ CN(0, calibration_error_std²)`.
    pub fn apply_calibration_error<R: Rng>(&self, h: &CMatrix, rng: &mut R) -> CMatrix {
        let mut out = h.clone();
        self.apply_calibration_error_in_place(&mut out, rng);
        out
    }

    /// In-place form of [`HardwareProfile::apply_calibration_error`] —
    /// identical arithmetic and RNG draws, no matrix allocation.
    pub fn apply_calibration_error_in_place<R: Rng>(&self, h: &mut CMatrix, rng: &mut R) {
        if self.calibration_error_std == 0.0 {
            return;
        }
        let s = self.calibration_error_std / 2f64.sqrt();
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                let eps = c64(sample_normal(rng), sample_normal(rng)).scale(s);
                h[(i, j)] *= Complex64::ONE + eps;
            }
        }
    }

    /// What a joining transmitter believes the *forward* channel to a
    /// receiver is, given the true forward matrix: reciprocity reading
    /// (estimation noise on the reverse direction) plus calibration
    /// residual. This composed error is what bounds nulling depth.
    pub fn reciprocal_channel_knowledge<R: Rng>(&self, h_true: &CMatrix, rng: &mut R) -> CMatrix {
        let mut estimated = self.corrupt_estimate(h_true, rng);
        self.apply_calibration_error_in_place(&mut estimated, rng);
        estimated
    }

    /// Split-storage, pooled sibling of
    /// [`HardwareProfile::corrupt_estimate`]: writes the corrupted
    /// estimate into `out` (buffers reused). Identical entry arithmetic
    /// and the identical row-major RNG draw order (two normals per
    /// entry), so seeded results match the interleaved path bit for bit.
    pub fn corrupt_estimate_into<R: Rng>(&self, h: &CMatrixSoA, rng: &mut R, out: &mut CMatrixSoA) {
        let err_amp = 10f64.powf(-self.estimation_snr_db / 20.0);
        out.assign_from(h);
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                let scale = h.get(i, j).abs() * err_amp / 2f64.sqrt();
                let e = c64(sample_normal(rng), sample_normal(rng)).scale(scale);
                out.set(i, j, out.get(i, j) + e);
            }
        }
    }

    /// Split-storage sibling of
    /// [`HardwareProfile::apply_calibration_error_in_place`] — identical
    /// arithmetic and RNG draws (including the no-draw early return when
    /// the calibration residual is zero).
    pub fn apply_calibration_error_soa_in_place<R: Rng>(&self, h: &mut CMatrixSoA, rng: &mut R) {
        if self.calibration_error_std == 0.0 {
            return;
        }
        let s = self.calibration_error_std / 2f64.sqrt();
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                let eps = c64(sample_normal(rng), sample_normal(rng)).scale(s);
                h.set(i, j, h.get(i, j) * (Complex64::ONE + eps));
            }
        }
    }

    /// Split-storage, pooled sibling of
    /// [`HardwareProfile::reciprocal_channel_knowledge`]: estimation
    /// noise then calibration residual, into a reusable buffer, with the
    /// same composed RNG stream as the interleaved path.
    pub fn reciprocal_channel_knowledge_into<R: Rng>(
        &self,
        h_true: &CMatrixSoA,
        rng: &mut R,
        out: &mut CMatrixSoA,
    ) {
        self.corrupt_estimate_into(h_true, rng, out);
        self.apply_calibration_error_soa_in_place(out, rng);
    }

    /// Adds transmit-chain EVM noise to a per-antenna sample stream:
    /// each sample is sent as `x + n`, `n ~ CN(0, |x_rms|² · evm²)`.
    pub fn add_tx_evm<R: Rng>(&self, stream: &mut [Complex64], rng: &mut R) {
        let evm = self.tx_evm_amplitude();
        if evm <= 1e-12 || stream.is_empty() {
            return;
        }
        let rms: f64 =
            (stream.iter().map(|z| z.norm_sqr()).sum::<f64>() / stream.len() as f64).sqrt();
        let s = rms * evm / 2f64.sqrt();
        for z in stream.iter_mut() {
            *z += c64(sample_normal(rng), sample_normal(rng)).scale(s);
        }
    }

    /// The expected cancellation depth (dB) this profile can achieve:
    /// interference is suppressed until limited by the *sum* of the
    /// estimation error power and EVM floor. Used by n+'s join-power
    /// control as the protocol's `L` parameter when derived from hardware
    /// (the paper measures L ≈ 25–27 dB).
    pub fn expected_cancellation_depth_db(&self) -> f64 {
        let est = 10f64.powf(-self.estimation_snr_db / 10.0);
        let cal = self.calibration_error_std.powi(2);
        let evm = 10f64.powf(self.tx_evm_db / 10.0);
        -10.0 * (est + cal + evm).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_h(rng: &mut StdRng) -> CMatrix {
        let data: Vec<Complex64> = (0..6)
            .map(|_| c64(sample_normal(rng), sample_normal(rng)))
            .collect();
        CMatrix::from_vec(2, 3, data)
    }

    #[test]
    fn default_profile_gives_paper_cancellation_depth() {
        let p = HardwareProfile::default();
        let depth = p.expected_cancellation_depth_db();
        assert!(
            (24.0..=28.0).contains(&depth),
            "cancellation depth {depth:.1} dB outside the paper's 25–27 dB band"
        );
    }

    #[test]
    fn ideal_hardware_is_transparent() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = random_h(&mut rng);
        let est = IDEAL_HARDWARE.reciprocal_channel_knowledge(&h, &mut rng);
        assert!(est.approx_eq(&h, 1e-12));
        let mut stream = vec![c64(1.0, 0.0); 16];
        IDEAL_HARDWARE.add_tx_evm(&mut stream, &mut rng);
        for z in stream {
            assert!(z.approx_eq(c64(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn estimate_error_magnitude_tracks_snr() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = HardwareProfile {
            estimation_snr_db: 20.0,
            ..HardwareProfile::default()
        };
        let n = 2000;
        let mut rel_err = 0.0;
        for _ in 0..n {
            let h = random_h(&mut rng);
            let est = p.corrupt_estimate(&h, &mut rng);
            rel_err += (&est - &h).frobenius_norm().powi(2) / h.frobenius_norm().powi(2);
        }
        rel_err /= n as f64;
        let expect = 10f64.powf(-2.0); // -20 dB
        assert!(
            (rel_err / expect - 1.0).abs() < 0.15,
            "relative error power {rel_err:.5} vs {expect:.5}"
        );
    }

    #[test]
    fn evm_noise_scales_with_signal() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = HardwareProfile::default();
        let clean = vec![c64(2.0, 0.0); 4000];
        let mut noisy = clean.clone();
        p.add_tx_evm(&mut noisy, &mut rng);
        let err_pow: f64 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / clean.len() as f64;
        let sig_pow = 4.0;
        let measured_evm_db = 10.0 * (err_pow / sig_pow).log10();
        assert!(
            (measured_evm_db - p.tx_evm_db).abs() < 1.0,
            "measured EVM {measured_evm_db:.1} dB vs configured {}",
            p.tx_evm_db
        );
    }

    #[test]
    fn calibration_error_is_multiplicative() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = HardwareProfile {
            calibration_error_std: 0.1,
            ..HardwareProfile::default()
        };
        // A zero channel stays zero under multiplicative error.
        let zero = CMatrix::zeros(2, 2);
        let out = p.apply_calibration_error(&zero, &mut rng);
        assert!(out.approx_eq(&zero, 1e-12));
    }

    #[test]
    fn soa_impairments_match_interleaved_bitwise() {
        let p = HardwareProfile::default();
        let mut rng_a = StdRng::seed_from_u64(77);
        let h = random_h(&mut rng_a);
        let hs = CMatrixSoA::from_aos(&h);
        // Same seed, two paths: the RNG streams must stay in lockstep.
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let expect = p.reciprocal_channel_knowledge(&h, &mut r1);
        let mut out = CMatrixSoA::default();
        p.reciprocal_channel_knowledge_into(&hs, &mut r2, &mut out);
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                assert_eq!(out.get(i, j).re.to_bits(), expect[(i, j)].re.to_bits());
                assert_eq!(out.get(i, j).im.to_bits(), expect[(i, j)].im.to_bits());
            }
        }
        // After both paths the RNGs must agree on the next draw.
        assert_eq!(
            sample_normal(&mut r1).to_bits(),
            sample_normal(&mut r2).to_bits()
        );
        // Zero calibration residual must not consume RNG state.
        let quiet = HardwareProfile {
            calibration_error_std: 0.0,
            ..p
        };
        let mut r3 = StdRng::seed_from_u64(10);
        let mut r4 = StdRng::seed_from_u64(10);
        let mut copy = out.clone();
        quiet.apply_calibration_error_soa_in_place(&mut copy, &mut r3);
        assert_eq!(
            sample_normal(&mut r3).to_bits(),
            sample_normal(&mut r4).to_bits()
        );
    }

    #[test]
    fn composed_knowledge_error_larger_than_each_part() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = HardwareProfile::default();
        let n = 3000;
        let (mut est_only, mut composed) = (0.0, 0.0);
        for _ in 0..n {
            let h = random_h(&mut rng);
            let e1 = p.corrupt_estimate(&h, &mut rng);
            let e2 = p.reciprocal_channel_knowledge(&h, &mut rng);
            est_only += (&e1 - &h).frobenius_norm().powi(2);
            composed += (&e2 - &h).frobenius_norm().powi(2);
        }
        assert!(
            composed > est_only,
            "composed error {composed} not larger than estimation-only {est_only}"
        );
    }
}
