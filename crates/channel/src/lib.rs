//! # nplus-channel
//!
//! Wireless channel substrate for the `nplus` workspace — the reproduction
//! of *"Random Access Heterogeneous MIMO Networks"* (SIGCOMM 2011).
//!
//! The paper evaluates on a USRP2 testbed (Fig. 10) with LOS and NLOS
//! links; this crate simulates that physical layer-below-the-PHY:
//!
//! * [`placement`] — the floor-plan geometry and random node placement
//!   methodology of the paper's experiments;
//! * [`environment`] — pluggable propagation worlds
//!   ([`ChannelEnvironment`]): the paper's indoor testbed as the
//!   pinned default plus outdoor, rich-scatter and degraded-hardware
//!   environments, resolvable by name;
//! * [`pathloss`] — log-distance large-scale loss calibrated to the
//!   paper's 5–35 dB link-SNR operating range;
//! * [`fading`] — Rayleigh/Rician tapped-delay-line multipath, consistent
//!   between the time domain (medium) and frequency domain (precoder);
//! * [`mimo`] — per-link MIMO channels with exact electromagnetic
//!   reciprocity;
//! * [`freq_table`] — precomputed per-subcarrier frequency responses
//!   (bitwise-identical to on-the-fly evaluation, computed once);
//! * [`impairments`] — the hardware error model (estimation noise,
//!   calibration residual, transmit EVM) that bounds nulling/alignment
//!   depth to the paper's measured 25–27 dB;
//! * [`cfo`] — carrier-frequency-offset application, estimation, and the
//!   pre-compensation joiners perform;
//! * [`noise`] — calibrated complex AWGN.

#![forbid(unsafe_code)]

pub mod cfo;
pub mod environment;
pub mod fading;
pub mod freq_table;
pub mod impairments;
pub mod mimo;
pub mod noise;
pub mod pathloss;
pub mod placement;

pub use cfo::{apply_cfo, estimate_cfo, precompensate_cfo};
pub use environment::{
    environment_from_name, ChannelEnvironment, DegradedHardware, EnvironmentError, OscillatorDraw,
    OutdoorFreeSpace, RichScatter, Sigcomm11Indoor, BUILTIN_ENVIRONMENT_NAMES, DEGRADED_HARDWARE,
    OUTDOOR_FREE_SPACE, RICH_SCATTER, SIGCOMM11_INDOOR,
};
pub use fading::{DelayProfile, FadingChannel};
pub use freq_table::FreqResponseTable;
pub use impairments::{HardwareProfile, IDEAL_HARDWARE};
pub use mimo::MimoLink;
pub use noise::{add_noise, measure_power, noise_sample, noise_stream, snr_db};
pub use pathloss::{sample_normal, LinkBudget, PathLossModel};
pub use placement::{Location, Point, Testbed};
