//! Carrier frequency offset (CFO).
//!
//! Distinct nodes have distinct oscillators; their carrier frequencies
//! differ by up to a few kHz at 2.4 GHz. The paper (§4, "Frequency
//! Offset") has joining transmitters estimate their offset to the *first*
//! contention winner while decoding its RTS and pre-compensate by rotating
//! their baseband samples with `e^{j2πΔf t}` — aligning all concurrent
//! transmitters in frequency without explicit coordination.

use nplus_linalg::Complex64;

/// Applies a frequency offset of `delta_f_hz` to a sample stream at
/// `sample_rate_hz`, starting the rotation at sample index `start_index`
/// (the rotation must be phase-continuous across chunks of one
/// transmission).
pub fn apply_cfo(
    samples: &mut [Complex64],
    delta_f_hz: f64,
    sample_rate_hz: f64,
    start_index: u64,
) {
    if delta_f_hz == 0.0 {
        return;
    }
    let step = 2.0 * std::f64::consts::PI * delta_f_hz / sample_rate_hz;
    for (i, z) in samples.iter_mut().enumerate() {
        let ang = step * (start_index + i as u64) as f64;
        *z *= Complex64::cis(ang);
    }
}

/// Pre-compensates a transmit stream for a known offset (the inverse
/// rotation of [`apply_cfo`]).
pub fn precompensate_cfo(
    samples: &mut [Complex64],
    delta_f_hz: f64,
    sample_rate_hz: f64,
    start_index: u64,
) {
    apply_cfo(samples, -delta_f_hz, sample_rate_hz, start_index);
}

/// Estimates the frequency offset of a received stream from the phase
/// drift between two repetitions of a known periodic sequence
/// (`period` samples apart) — the standard 802.11 STF/LTF method, and the
/// same computation a joiner runs on the first winner's RTS preamble.
pub fn estimate_cfo(rx: &[Complex64], period: usize, sample_rate_hz: f64) -> f64 {
    assert!(
        rx.len() >= 2 * period,
        "need two repetitions to estimate CFO"
    );
    let mut acc = Complex64::ZERO;
    for i in 0..rx.len() - period {
        acc += rx[i + period] * rx[i].conj();
    }
    let phase = acc.arg();
    phase * sample_rate_hz / (2.0 * std::f64::consts::PI * period as f64)
}

/// The maximum unambiguous offset estimable from repetitions `period`
/// samples apart (half a cycle of rotation between repetitions).
pub fn max_estimable_cfo(period: usize, sample_rate_hz: f64) -> f64 {
    sample_rate_hz / (2.0 * period as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::c64;
    use nplus_phy::params::OfdmConfig;
    use nplus_phy::preamble::stf_time;

    const FS: f64 = 10e6;

    #[test]
    fn apply_then_compensate_is_identity() {
        let mut s: Vec<Complex64> = (0..256)
            .map(|i| c64((i as f64 * 0.1).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let orig = s.clone();
        apply_cfo(&mut s, 3_500.0, FS, 1000);
        precompensate_cfo(&mut s, 3_500.0, FS, 1000);
        for (a, b) in s.iter().zip(&orig) {
            assert!(a.approx_eq(*b, 1e-9));
        }
    }

    #[test]
    fn cfo_preserves_power() {
        let mut s = vec![c64(1.0, -1.0); 64];
        let p0: f64 = s.iter().map(|z| z.norm_sqr()).sum();
        apply_cfo(&mut s, 7000.0, FS, 0);
        let p1: f64 = s.iter().map(|z| z.norm_sqr()).sum();
        assert!((p0 - p1).abs() < 1e-9);
    }

    #[test]
    fn estimate_recovers_offset_from_stf() {
        let cfg = OfdmConfig::usrp2();
        for &true_cfo in &[-8_000.0, -1_234.0, 0.0, 2_000.0, 11_000.0] {
            let mut stf = stf_time(&cfg);
            apply_cfo(&mut stf, true_cfo, FS, 0);
            let est = estimate_cfo(&stf, 16, FS);
            assert!(
                (est - true_cfo).abs() < 1.0,
                "true {true_cfo} Hz, estimated {est} Hz"
            );
        }
    }

    #[test]
    fn estimate_with_noise_is_close() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cfg = OfdmConfig::usrp2();
        let mut rng = StdRng::seed_from_u64(6);
        let true_cfo = 5_000.0;
        let mut stf = stf_time(&cfg);
        apply_cfo(&mut stf, true_cfo, FS, 0);
        // 20 dB SNR noise.
        for z in stf.iter_mut() {
            let n = c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(0.2);
            *z += n;
        }
        let est = estimate_cfo(&stf, 16, FS);
        assert!(
            (est - true_cfo).abs() < 200.0,
            "true {true_cfo} Hz, estimated {est} Hz"
        );
    }

    #[test]
    fn ambiguity_limit() {
        // With 16-sample repetitions at 10 MHz the unambiguous range is
        // ±312.5 kHz — far beyond real oscillator offsets.
        assert!((max_estimable_cfo(16, FS) - 312_500.0).abs() < 1e-6);
    }

    #[test]
    fn phase_continuity_across_chunks() {
        // Applying CFO to two consecutive chunks with correct start
        // indices must equal applying it to the concatenation.
        let s: Vec<Complex64> = (0..128).map(|i| c64(1.0, i as f64 * 0.01)).collect();
        let mut whole = s.clone();
        apply_cfo(&mut whole, 4000.0, FS, 0);
        let mut first = s[..64].to_vec();
        let mut second = s[64..].to_vec();
        apply_cfo(&mut first, 4000.0, FS, 0);
        apply_cfo(&mut second, 4000.0, FS, 64);
        for (i, (a, b)) in whole.iter().zip(first.iter().chain(&second)).enumerate() {
            assert!(a.approx_eq(*b, 1e-9), "sample {i}");
        }
    }
}
