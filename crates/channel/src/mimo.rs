//! MIMO link channels.
//!
//! A [`MimoLink`] bundles the `N_rx × M_tx` tapped-delay-line channels of
//! one transmitter→receiver link, together with the large-scale amplitude
//! from the link budget. It serves three consumers:
//!
//! * the **medium simulator** applies the link in the time domain
//!   ([`MimoLink::apply`]);
//! * the **precoder** reads per-subcarrier channel matrices
//!   ([`MimoLink::channel_matrix`]);
//! * **reciprocity** ([`MimoLink::reverse`]) derives the reverse channel
//!   from the same taps — electromagnetically exact, as the paper argues
//!   (§2); hardware asymmetry is layered on by
//!   [`crate::impairments::HardwareProfile`].

use crate::fading::{DelayProfile, FadingChannel};
use nplus_linalg::{CMatrix, Complex64};
use rand::Rng;

/// The small-scale + large-scale channel of one directed link.
#[derive(Debug, Clone)]
pub struct MimoLink {
    /// `fading[rx][tx]`: per antenna-pair FIR channels.
    fading: Vec<Vec<FadingChannel>>,
    /// Amplitude applied to every path (large-scale gain; in the medium's
    /// noise-normalized units, `amplitude^2` = mean per-antenna SNR).
    amplitude: f64,
    n_tx: usize,
    n_rx: usize,
}

impl MimoLink {
    /// Draws a link realization: independent fading per antenna pair
    /// (antenna spacing in rich scattering), one common large-scale gain.
    pub fn sample<R: Rng>(
        n_tx: usize,
        n_rx: usize,
        amplitude: f64,
        profile: &DelayProfile,
        rng: &mut R,
    ) -> Self {
        assert!(n_tx >= 1 && n_rx >= 1);
        let fading = (0..n_rx)
            .map(|_| {
                (0..n_tx)
                    .map(|_| FadingChannel::sample(profile, rng))
                    .collect()
            })
            .collect();
        MimoLink {
            fading,
            amplitude,
            n_tx,
            n_rx,
        }
    }

    /// An ideal flat link with the given amplitude (for tests).
    pub fn flat(n_tx: usize, n_rx: usize, amplitude: f64) -> Self {
        let fading = (0..n_rx)
            .map(|_| (0..n_tx).map(|_| FadingChannel::identity()).collect())
            .collect();
        MimoLink {
            fading,
            amplitude,
            n_tx,
            n_rx,
        }
    }

    /// Constructs a link from explicit per-pair channels.
    pub fn from_parts(fading: Vec<Vec<FadingChannel>>, amplitude: f64) -> Self {
        let n_rx = fading.len();
        assert!(n_rx >= 1);
        let n_tx = fading[0].len();
        assert!(fading.iter().all(|row| row.len() == n_tx));
        MimoLink {
            fading,
            amplitude,
            n_tx,
            n_rx,
        }
    }

    /// Number of transmit antennas.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Number of receive antennas.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Large-scale amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Returns a copy with a different large-scale amplitude — the hook
    /// n+'s join-power control uses (§4: a joiner lowers its transmit
    /// power so residual interference lands below the noise floor).
    pub fn with_amplitude(&self, amplitude: f64) -> Self {
        let mut l = self.clone();
        l.amplitude = amplitude;
        l
    }

    /// The FIR channel of one antenna pair (including amplitude).
    pub fn pair(&self, rx: usize, tx: usize) -> &FadingChannel {
        &self.fading[rx][tx]
    }

    /// The `N_rx × M_tx` channel matrix at FFT bin `k` of an `n_fft` grid
    /// (the `H` of the paper's Eqs. 5–7), including large-scale amplitude.
    pub fn channel_matrix(&self, k: usize, n_fft: usize) -> CMatrix {
        let mut h = CMatrix::zeros(self.n_rx, self.n_tx);
        for rx in 0..self.n_rx {
            for tx in 0..self.n_tx {
                h[(rx, tx)] = self.fading[rx][tx]
                    .freq_response_at(k, n_fft)
                    .scale(self.amplitude);
            }
        }
        h
    }

    /// Channel matrices for every bin of an `n_fft` grid.
    pub fn channel_matrices(&self, n_fft: usize) -> Vec<CMatrix> {
        (0..n_fft).map(|k| self.channel_matrix(k, n_fft)).collect()
    }

    /// Applies the link in the time domain: convolves every transmit
    /// stream with its per-pair FIR and sums per receive antenna.
    ///
    /// `tx_streams[tx]` are per-antenna sample streams of equal length
    /// `L`; the output holds `n_rx` streams of length `L + taps − 1`.
    pub fn apply(&self, tx_streams: &[Vec<Complex64>]) -> Vec<Vec<Complex64>> {
        assert_eq!(tx_streams.len(), self.n_tx, "apply: stream count mismatch");
        let in_len = tx_streams.first().map_or(0, |s| s.len());
        let max_taps = self
            .fading
            .iter()
            .flat_map(|row| row.iter().map(|f| f.taps.len()))
            .max()
            .unwrap_or(1);
        let out_len = if in_len == 0 {
            0
        } else {
            in_len + max_taps - 1
        };
        let mut out = vec![vec![Complex64::ZERO; out_len]; self.n_rx];
        for rx in 0..self.n_rx {
            for tx in 0..self.n_tx {
                let conv = self.fading[rx][tx].convolve(&tx_streams[tx]);
                for (i, &s) in conv.iter().enumerate() {
                    out[rx][i] += s.scale(self.amplitude);
                }
            }
        }
        out
    }

    /// The electromagnetically reciprocal reverse link: `H_rev = H^T`
    /// per subcarrier, i.e. the same FIR taps with tx/rx roles swapped
    /// and the same large-scale amplitude.
    pub fn reverse(&self) -> MimoLink {
        let mut fading = vec![Vec::with_capacity(self.n_rx); self.n_tx];
        for (tx, row) in fading.iter_mut().enumerate() {
            for rx in 0..self.n_rx {
                row.push(self.fading[rx][tx].clone());
            }
        }
        MimoLink {
            fading,
            amplitude: self.amplitude,
            n_tx: self.n_rx,
            n_rx: self.n_tx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn channel_matrix_shape_and_amplitude() {
        let link = MimoLink::flat(3, 2, 2.0);
        let h = link.channel_matrix(5, 64);
        assert_eq!(h.shape(), (2, 3));
        for i in 0..2 {
            for j in 0..3 {
                assert!(h[(i, j)].approx_eq(c64(2.0, 0.0), 1e-12));
            }
        }
    }

    #[test]
    fn reverse_is_transpose_per_subcarrier() {
        let mut rng = StdRng::seed_from_u64(4);
        let link = MimoLink::sample(3, 2, 1.5, &DelayProfile::nlos(), &mut rng);
        let rev = link.reverse();
        assert_eq!(rev.n_tx(), 2);
        assert_eq!(rev.n_rx(), 3);
        for k in [0usize, 7, 31, 63] {
            let h = link.channel_matrix(k, 64);
            let hr = rev.channel_matrix(k, 64);
            assert!(hr.approx_eq(&h.transpose(), 1e-12), "bin {k}");
        }
        // Reciprocity is an involution.
        let back = rev.reverse();
        for k in [3usize, 40] {
            assert!(back
                .channel_matrix(k, 64)
                .approx_eq(&link.channel_matrix(k, 64), 1e-12));
        }
    }

    #[test]
    fn apply_matches_channel_matrix_for_tones() {
        // Sending a subcarrier tone through the time-domain path must
        // reproduce the frequency-domain channel matrix in steady state.
        let mut rng = StdRng::seed_from_u64(8);
        let link = MimoLink::sample(2, 2, 0.7, &DelayProfile::los(), &mut rng);
        let n_fft = 64;
        let k = 12;
        let tone: Vec<Complex64> = (0..192)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * (k * t) as f64 / n_fft as f64))
            .collect();
        // Transmit the tone from antenna 0 only.
        let silent = vec![Complex64::ZERO; tone.len()];
        let rx = link.apply(&[tone.clone(), silent]);
        let h = link.channel_matrix(k, n_fft);
        for rx_ant in 0..2 {
            for t in 20..100 {
                let expect = tone[t] * h[(rx_ant, 0)];
                assert!(
                    rx[rx_ant][t].approx_eq(expect, 1e-9),
                    "rx {rx_ant} sample {t}"
                );
            }
        }
    }

    #[test]
    fn apply_superimposes_antennas() {
        let link = MimoLink::flat(2, 1, 1.0);
        let a = vec![c64(1.0, 0.0); 4];
        let b = vec![c64(0.0, 1.0); 4];
        let rx = link.apply(&[a, b]);
        for t in 0..4 {
            assert!(rx[0][t].approx_eq(c64(1.0, 1.0), 1e-12));
        }
    }

    #[test]
    fn with_amplitude_scales_everything() {
        let mut rng = StdRng::seed_from_u64(19);
        let link = MimoLink::sample(2, 2, 1.0, &DelayProfile::nlos(), &mut rng);
        let half = link.with_amplitude(0.5);
        let h1 = link.channel_matrix(10, 64);
        let h2 = half.channel_matrix(10, 64);
        assert!(h2.approx_eq(&h1.scale_re(0.5), 1e-12));
    }

    #[test]
    fn independent_fading_across_pairs() {
        let mut rng = StdRng::seed_from_u64(31);
        let link = MimoLink::sample(2, 2, 1.0, &DelayProfile::nlos(), &mut rng);
        let h = link.channel_matrix(0, 64);
        // All four entries should differ (independent draws).
        let entries = [h[(0, 0)], h[(0, 1)], h[(1, 0)], h[(1, 1)]];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    !entries[i].approx_eq(entries[j], 1e-9),
                    "entries {i} and {j} identical"
                );
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let link = MimoLink::flat(1, 1, 1.0);
        let rx = link.apply(&[Vec::new()]);
        assert!(rx[0].is_empty());
    }
}
