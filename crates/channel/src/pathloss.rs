//! Large-scale path loss and shadowing.
//!
//! A standard indoor log-distance model calibrated so that the testbed
//! geometry of [`crate::placement::Testbed::sigcomm11`] produces link SNRs
//! spanning roughly 5–35 dB at 2.4 GHz — the range over which the paper's
//! Fig. 11 sweeps the "original SNR of the unwanted signal"
//! (7.5–32.5 dB bins).

use rand::Rng;

/// Log-distance path-loss model with log-normal shadowing.
#[derive(Debug, Clone, Copy)]
pub struct PathLossModel {
    /// Reference loss at 1 m (dB). ~40 dB at 2.4 GHz.
    pub pl0_db: f64,
    /// Path-loss exponent for line-of-sight links.
    pub exponent_los: f64,
    /// Path-loss exponent for non-line-of-sight links.
    pub exponent_nlos: f64,
    /// Extra per-wall penetration loss for NLOS links (dB).
    pub wall_loss_db: f64,
    /// Log-normal shadowing standard deviation (dB).
    pub shadowing_sigma_db: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        Self::indoor()
    }
}

impl PathLossModel {
    /// The paper's indoor office model (the crate-wide default).
    ///
    /// Calibrated against the Fig. 10-style testbed geometry so that
    /// pairwise link SNRs under the default LinkBudget span ~3.5–36 dB
    /// with a ~20 dB median — the operating range the paper's Fig. 11
    /// sweeps (7.5–32.5 dB unwanted-signal bins). pl0 folds in antenna
    /// and front-end inefficiencies of the USRP2-class radios. `const`
    /// so environments can hold it in statics.
    pub const fn indoor() -> Self {
        PathLossModel {
            pl0_db: 68.0,
            exponent_los: 2.0,
            exponent_nlos: 2.8,
            wall_loss_db: 5.0,
            shadowing_sigma_db: 3.0,
        }
    }
}

impl PathLossModel {
    /// Deterministic (median) path loss in dB at `distance_m` meters.
    pub fn median_loss_db(&self, distance_m: f64, nlos: bool) -> f64 {
        let d = distance_m.max(1.0);
        let exp = if nlos {
            self.exponent_nlos
        } else {
            self.exponent_los
        };
        let wall = if nlos { self.wall_loss_db } else { 0.0 };
        self.pl0_db + 10.0 * exp * d.log10() + wall
    }

    /// Path loss with a shadowing draw (dB).
    pub fn sample_loss_db<R: Rng>(&self, distance_m: f64, nlos: bool, rng: &mut R) -> f64 {
        self.median_loss_db(distance_m, nlos) + sample_normal(rng) * self.shadowing_sigma_db
    }
}

/// Link power budget: converts transmit power and path loss to the mean
/// received SNR given a noise floor.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Transmit power (dBm). Typical WLAN/USRP2 operating point.
    pub tx_power_dbm: f64,
    /// Receiver noise floor (dBm) over the channel bandwidth.
    pub noise_floor_dbm: f64,
}

impl Default for LinkBudget {
    fn default() -> Self {
        Self::usrp2()
    }
}

impl LinkBudget {
    /// The paper's USRP2-class budget (the crate-wide default): 12 dBm
    /// transmit, kTB at 10 MHz ≈ −104 dBm plus a 6 dB noise figure.
    /// `const` so environments can hold it in statics.
    pub const fn usrp2() -> Self {
        LinkBudget {
            tx_power_dbm: 12.0,
            noise_floor_dbm: -98.0,
        }
    }

    /// Mean received SNR (dB) across a link with the given path loss.
    pub fn snr_db(&self, path_loss_db: f64) -> f64 {
        self.tx_power_dbm - path_loss_db - self.noise_floor_dbm
    }

    /// Amplitude scale factor corresponding to a path loss in dB, such
    /// that a unit-power transmit waveform arrives with linear power
    /// `10^(-loss/10)` *relative to the noise floor taken as 0 dB*.
    ///
    /// The medium simulator works in noise-floor-normalized units: the
    /// AWGN added at every receiver has unit variance, and signal
    /// amplitudes are scaled so that `|h|^2 = SNR_linear`.
    pub fn amplitude_scale(&self, path_loss_db: f64) -> f64 {
        let snr_db = self.snr_db(path_loss_db);
        10f64.powf(snr_db / 20.0)
    }
}

/// Draws one standard normal sample (Box–Muller). Embedded here so the
/// crate does not need `rand_distr`. Mean 0, standard deviation 1.
pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loss_grows_with_distance() {
        let m = PathLossModel::default();
        let mut last = 0.0;
        for d in [1.0, 2.0, 5.0, 10.0, 20.0] {
            let l = m.median_loss_db(d, false);
            assert!(l > last);
            last = l;
        }
    }

    #[test]
    fn nlos_lossier_than_los() {
        let m = PathLossModel::default();
        for d in [2.0, 8.0, 15.0] {
            assert!(m.median_loss_db(d, true) > m.median_loss_db(d, false) + 5.0);
        }
    }

    #[test]
    fn below_one_meter_clamps() {
        let m = PathLossModel::default();
        assert_eq!(m.median_loss_db(0.1, false), m.median_loss_db(1.0, false));
    }

    #[test]
    fn testbed_snr_range_matches_paper() {
        // Across the default testbed geometry, link SNRs should span
        // roughly the 5–35 dB range the paper's experiments sweep.
        use crate::placement::Testbed;
        let tb = Testbed::sigcomm11();
        let m = PathLossModel::default();
        let b = LinkBudget::default();
        let mut min_snr = f64::INFINITY;
        let mut max_snr = f64::NEG_INFINITY;
        let locs = tb.locations();
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                let d = locs[i].pos.distance(&locs[j].pos);
                let nlos = tb.link_is_nlos(&locs[i], &locs[j]);
                let snr = b.snr_db(m.median_loss_db(d, nlos));
                min_snr = min_snr.min(snr);
                max_snr = max_snr.max(snr);
            }
        }
        assert!(
            min_snr > 0.0 && min_snr < 15.0,
            "weakest link {min_snr:.1} dB out of range"
        );
        assert!(
            max_snr > 28.0 && max_snr < 45.0,
            "strongest link {max_snr:.1} dB out of range"
        );
    }

    #[test]
    fn shadowing_has_spread() {
        let m = PathLossModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..500)
            .map(|_| m.sample_loss_db(5.0, false, &mut rng))
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let median = m.median_loss_db(5.0, false);
        assert!(
            (mean - median).abs() < 0.5,
            "mean {mean} vs median {median}"
        );
        assert!((var.sqrt() - 3.0).abs() < 0.5, "sigma {}", var.sqrt());
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn amplitude_scale_squares_to_snr() {
        let b = LinkBudget::default();
        let loss = 80.0;
        let snr_lin = 10f64.powf(b.snr_db(loss) / 10.0);
        let amp = b.amplitude_scale(loss);
        assert!((amp * amp - snr_lin).abs() / snr_lin < 1e-9);
    }
}
