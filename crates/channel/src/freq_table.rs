//! Precomputed per-subcarrier frequency responses of a MIMO link.
//!
//! The protocol simulator evaluates the same pure channel matrices
//! thousands of times per run (round × stream × subcarrier × interferer).
//! [`FreqResponseTable`] performs that evaluation exactly once per
//! occupied subcarrier — a single pass over the FIR taps with the DFT
//! twiddles computed once per bin and shared across all antenna pairs —
//! and then serves `&CMatrix` lookups.
//!
//! The table is **bit-for-bit identical** to calling
//! [`MimoLink::channel_matrix`] per bin: the accumulation order per
//! antenna pair is the same (`acc += tap[d] · e^{-j2πkd/N}` in tap
//! order, then one amplitude scale), only the twiddle evaluation is
//! hoisted out of the pair loop. Seeded simulations therefore produce
//! identical results whether they read the table or recompute — the
//! property `protocol_invariants::caching_preserves_results_bit_for_bit`
//! checks end-to-end.

use crate::mimo::MimoLink;
use nplus_linalg::{CMatrix, CMatrixSoA, Complex64};

/// Frequency responses of one [`MimoLink`], evaluated once for a fixed
/// set of FFT bins (normally the occupied subcarriers).
///
/// Matrices are stored in split (structure-of-arrays) layout so the
/// engine's precoder/ZF-SINR hot path consumes them without conversion;
/// the build still runs the exact interleaved tap accumulation below and
/// converts value-for-value, so lookups remain bit-identical to
/// [`MimoLink::channel_matrix`].
#[derive(Debug, Clone)]
pub struct FreqResponseTable {
    /// One `N_rx × M_tx` matrix per requested bin, in request order.
    matrices: Vec<CMatrixSoA>,
    /// The FFT bins the table covers, in request order.
    bins: Vec<usize>,
    /// FFT grid size the bins index into.
    n_fft: usize,
}

impl FreqResponseTable {
    /// Evaluates the link's `N_rx × M_tx` matrices for every bin in
    /// `bins` on an `n_fft` grid.
    ///
    /// The taps of every antenna pair are traversed once per bin; the
    /// per-delay twiddle factors are computed once per bin and reused
    /// across all pairs (the per-pair arithmetic stays identical to
    /// [`MimoLink::channel_matrix`], so results match bitwise).
    pub fn new(link: &MimoLink, bins: &[usize], n_fft: usize) -> Self {
        let (n_rx, n_tx) = (link.n_rx(), link.n_tx());
        let amplitude = link.amplitude();
        let max_taps = (0..n_rx)
            .flat_map(|rx| (0..n_tx).map(move |tx| (rx, tx)))
            .map(|(rx, tx)| link.pair(rx, tx).taps.len())
            .max()
            .unwrap_or(1);

        let mut twiddles: Vec<Complex64> = Vec::with_capacity(max_taps);
        let mut matrices = Vec::with_capacity(bins.len());
        for &k in bins {
            twiddles.clear();
            for d in 0..max_taps {
                let ang = -2.0 * std::f64::consts::PI * (k * d) as f64 / n_fft as f64;
                twiddles.push(Complex64::cis(ang));
            }
            let mut h = CMatrix::zeros(n_rx, n_tx);
            for rx in 0..n_rx {
                for tx in 0..n_tx {
                    let taps = &link.pair(rx, tx).taps;
                    let mut acc = Complex64::ZERO;
                    for (d, &t) in taps.iter().enumerate() {
                        acc += t * twiddles[d];
                    }
                    h[(rx, tx)] = acc.scale(amplitude);
                }
            }
            matrices.push(CMatrixSoA::from_aos(&h));
        }
        FreqResponseTable {
            matrices,
            bins: bins.to_vec(),
            n_fft,
        }
    }

    /// The channel matrix of the `pos`-th requested bin (position in the
    /// `bins` slice given to [`FreqResponseTable::new`], *not* the raw
    /// FFT bin index), in split storage.
    pub fn matrix(&self, pos: usize) -> &CMatrixSoA {
        &self.matrices[pos]
    }

    /// All matrices, in bin-request order.
    pub fn matrices(&self) -> &[CMatrixSoA] {
        &self.matrices
    }

    /// The FFT bins the table covers, in request order.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Number of bins in the table.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// FFT grid size the bins index into.
    pub fn n_fft(&self) -> usize {
        self.n_fft
    }

    /// The same table with every matrix entry scaled by the real
    /// `factor` — the frequency-domain image of rescaling the link
    /// amplitude, used by slow mobility to re-derive the links incident
    /// to a moved node without re-drawing their taps.
    pub fn scaled(&self, factor: f64) -> Self {
        FreqResponseTable {
            matrices: self.matrices.iter().map(|m| m.scale_re(factor)).collect(),
            bins: self.bins.clone(),
            n_fft: self.n_fft,
        }
    }
}

// Tables are read concurrently by parallel sweep workers (one channel
// cache per job, shared across that job's protocol runs); keep them
// `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FreqResponseTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fading::DelayProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_channel_matrix_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for (n_tx, n_rx, profile) in [
            (1, 1, DelayProfile::los()),
            (2, 3, DelayProfile::nlos()),
            (4, 4, DelayProfile::nlos()),
        ] {
            let link = MimoLink::sample(n_tx, n_rx, 1.7, &profile, &mut rng);
            let bins: Vec<usize> = (0..64).step_by(3).collect();
            let table = FreqResponseTable::new(&link, &bins, 64);
            for (pos, &k) in bins.iter().enumerate() {
                let direct = link.channel_matrix(k, 64);
                let cached = table.matrix(pos);
                for r in 0..n_rx {
                    for c in 0..n_tx {
                        // Bitwise equality, not approximate: the cached
                        // path must be indistinguishable from recompute.
                        assert_eq!(
                            cached.get(r, c).re.to_bits(),
                            direct[(r, c)].re.to_bits(),
                            "bin {k} entry ({r},{c}) re"
                        );
                        assert_eq!(
                            cached.get(r, c).im.to_bits(),
                            direct[(r, c)].im.to_bits(),
                            "bin {k} entry ({r},{c}) im"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn covers_requested_bins_in_order() {
        let link = MimoLink::flat(2, 2, 1.0);
        let bins = vec![5usize, 1, 40];
        let table = FreqResponseTable::new(&link, &bins, 64);
        assert_eq!(table.bins(), &[5, 1, 40]);
        assert_eq!(table.n_bins(), 3);
        assert_eq!(table.n_fft(), 64);
        assert_eq!(table.matrices().len(), 3);
        assert_eq!(table.matrix(0).shape(), (2, 2));
    }

    #[test]
    fn respects_amplitude() {
        let mut rng = StdRng::seed_from_u64(3);
        let link = MimoLink::sample(2, 2, 1.0, &DelayProfile::nlos(), &mut rng);
        let half = link.with_amplitude(0.5);
        let bins = vec![10usize];
        let t1 = FreqResponseTable::new(&link, &bins, 64);
        let t2 = FreqResponseTable::new(&half, &bins, 64);
        assert!(t2
            .matrix(0)
            .to_aos()
            .approx_eq(&t1.matrix(0).scale_re(0.5).to_aos(), 1e-12));
    }
}
