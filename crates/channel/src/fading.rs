//! Small-scale fading: Rayleigh tapped-delay-line channels.
//!
//! Each antenna-pair link is a short FIR filter whose taps are complex
//! Gaussian (Rayleigh envelope) with an exponentially decaying power
//! profile. The taps generate both the time-domain behaviour (multipath,
//! inter-symbol interference absorbed by the OFDM cyclic prefix) and the
//! per-subcarrier frequency response used by the precoder — derived from
//! the *same* taps, so the simulation is self-consistent across domains.

use crate::pathloss::sample_normal;
use nplus_linalg::{c64, Complex64};
use rand::Rng;

/// Power-delay profile of the small-scale channel.
#[derive(Debug, Clone, Copy)]
pub struct DelayProfile {
    /// Number of taps (at one tap per sample period).
    pub n_taps: usize,
    /// Exponential decay rate per tap, in dB.
    pub decay_db_per_tap: f64,
    /// Rician K-factor (linear) applied to the first tap; 0 = pure
    /// Rayleigh (NLOS), larger = stronger line-of-sight component.
    pub rician_k: f64,
}

impl DelayProfile {
    /// LOS profile: short delay spread, strong direct path.
    pub fn los() -> Self {
        DelayProfile {
            n_taps: 4,
            decay_db_per_tap: 4.0,
            rician_k: 4.0,
        }
    }

    /// NLOS profile: longer delay spread, no direct path.
    pub fn nlos() -> Self {
        DelayProfile {
            n_taps: 8,
            decay_db_per_tap: 2.0,
            rician_k: 0.0,
        }
    }

    /// Relative power of each tap, normalized to sum to 1.
    pub fn tap_powers(&self) -> Vec<f64> {
        let raw: Vec<f64> = (0..self.n_taps)
            .map(|d| 10f64.powf(-(self.decay_db_per_tap * d as f64) / 10.0))
            .collect();
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|p| p / sum).collect()
    }
}

/// A sampled tapped-delay-line channel for one tx-antenna → rx-antenna
/// pair, with unit average energy (`sum E[|tap|^2] = 1`); large-scale gain
/// is applied separately by the link budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FadingChannel {
    /// FIR taps at sample spacing.
    pub taps: Vec<Complex64>,
}

impl FadingChannel {
    /// Draws a channel realization from the profile.
    pub fn sample<R: Rng>(profile: &DelayProfile, rng: &mut R) -> Self {
        let powers = profile.tap_powers();
        let k = profile.rician_k;
        let taps = powers
            .iter()
            .enumerate()
            .map(|(d, &p)| {
                if d == 0 && k > 0.0 {
                    // Rician first tap: deterministic LOS component with a
                    // random phase plus a scattered component.
                    let los_pow = p * k / (k + 1.0);
                    let scat_pow = p / (k + 1.0);
                    let phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    let los = Complex64::from_polar(los_pow.sqrt(), phase);
                    let scat =
                        c64(sample_normal(rng), sample_normal(rng)).scale((scat_pow / 2.0).sqrt());
                    los + scat
                } else {
                    c64(sample_normal(rng), sample_normal(rng)).scale((p / 2.0).sqrt())
                }
            })
            .collect();
        FadingChannel { taps }
    }

    /// An ideal single-tap unit channel (for tests).
    pub fn identity() -> Self {
        FadingChannel {
            taps: vec![Complex64::ONE],
        }
    }

    /// Total tap energy of this realization.
    pub fn energy(&self) -> f64 {
        self.taps.iter().map(|t| t.norm_sqr()).sum()
    }

    /// Frequency response at FFT bin `k` of an `n_fft`-point grid.
    pub fn freq_response_at(&self, k: usize, n_fft: usize) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (d, &t) in self.taps.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * d) as f64 / n_fft as f64;
            acc += t * Complex64::cis(ang);
        }
        acc
    }

    /// Full frequency response over an `n_fft`-point grid.
    pub fn freq_response(&self, n_fft: usize) -> Vec<Complex64> {
        (0..n_fft)
            .map(|k| self.freq_response_at(k, n_fft))
            .collect()
    }

    /// Convolves a transmit sample stream with the channel (linear
    /// convolution, output length `input.len() + taps.len() - 1`).
    pub fn convolve(&self, input: &[Complex64]) -> Vec<Complex64> {
        let n = input.len();
        let t = self.taps.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = vec![Complex64::ZERO; n + t - 1];
        for (i, &x) in input.iter().enumerate() {
            if x == Complex64::ZERO {
                continue;
            }
            for (d, &h) in self.taps.iter().enumerate() {
                out[i + d] += x * h;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tap_powers_normalized() {
        for p in [DelayProfile::los(), DelayProfile::nlos()] {
            let sum: f64 = p.tap_powers().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tap_powers_decay() {
        let powers = DelayProfile::nlos().tap_powers();
        for w in powers.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn average_energy_is_unity() {
        let mut rng = StdRng::seed_from_u64(21);
        for profile in [DelayProfile::los(), DelayProfile::nlos()] {
            let n = 4000;
            let mean: f64 = (0..n)
                .map(|_| FadingChannel::sample(&profile, &mut rng).energy())
                .sum::<f64>()
                / n as f64;
            assert!((mean - 1.0).abs() < 0.05, "mean energy {mean}");
        }
    }

    #[test]
    fn nlos_magnitudes_are_rayleigh_like() {
        // For a pure Rayleigh tap, E[|h|^4] / E[|h|^2]^2 = 2.
        let mut rng = StdRng::seed_from_u64(5);
        let profile = DelayProfile {
            n_taps: 1,
            decay_db_per_tap: 0.0,
            rician_k: 0.0,
        };
        let n = 20000;
        let (mut m2, mut m4) = (0.0, 0.0);
        for _ in 0..n {
            let h = FadingChannel::sample(&profile, &mut rng).taps[0];
            let p = h.norm_sqr();
            m2 += p;
            m4 += p * p;
        }
        m2 /= n as f64;
        m4 /= n as f64;
        let kurt = m4 / (m2 * m2);
        assert!((kurt - 2.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn los_has_less_fading_variance_than_nlos() {
        let mut rng = StdRng::seed_from_u64(9);
        let var_of = |profile: &DelayProfile, rng: &mut StdRng| {
            let n = 4000;
            let e: Vec<f64> = (0..n)
                .map(|_| {
                    FadingChannel::sample(profile, rng)
                        .freq_response_at(10, 64)
                        .norm_sqr()
                })
                .collect();
            let mean = e.iter().sum::<f64>() / n as f64;
            e.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64 / (mean * mean)
        };
        let v_los = var_of(&DelayProfile::los(), &mut rng);
        let v_nlos = var_of(&DelayProfile::nlos(), &mut rng);
        assert!(
            v_los < v_nlos,
            "LOS normalized variance {v_los} !< NLOS {v_nlos}"
        );
    }

    #[test]
    fn freq_response_matches_convolution_of_tone() {
        // Convolving a complex exponential with the FIR must scale it by
        // the frequency response (steady-state part).
        let mut rng = StdRng::seed_from_u64(2);
        let ch = FadingChannel::sample(&DelayProfile::nlos(), &mut rng);
        let n_fft = 64;
        let k = 9;
        let tone: Vec<Complex64> = (0..128)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * (k * t) as f64 / n_fft as f64))
            .collect();
        let out = ch.convolve(&tone);
        let h = ch.freq_response_at(k, n_fft);
        // Check steady-state samples (skip the first taps-1 transient).
        for t in ch.taps.len()..100 {
            let expect = tone[t] * h;
            assert!(
                out[t].approx_eq(expect, 1e-9),
                "sample {t}: {:?} vs {expect:?}",
                out[t]
            );
        }
    }

    #[test]
    fn convolution_length_and_linearity() {
        let ch = FadingChannel {
            taps: vec![c64(1.0, 0.0), c64(0.5, -0.5)],
        };
        let a = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let out = ch.convolve(&a);
        assert_eq!(out.len(), 3);
        assert!(out[0].approx_eq(c64(1.0, 0.0), 1e-12));
        assert!(out[1].approx_eq(c64(0.5, 0.5), 1e-12)); // 1*(0.5-0.5i)... + i*1
        assert!(out[2].approx_eq(c64(0.5, 0.5), 1e-12)); // i*(0.5-0.5i)
    }

    #[test]
    fn identity_channel_is_transparent() {
        let ch = FadingChannel::identity();
        let x = vec![c64(0.3, -0.7), c64(1.0, 1.0)];
        assert_eq!(ch.convolve(&x), x);
        for k in 0..64 {
            assert!(ch.freq_response_at(k, 64).approx_eq(Complex64::ONE, 1e-12));
        }
    }
}
