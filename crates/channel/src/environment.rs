//! Pluggable propagation environments.
//!
//! The paper's evaluation (§6) happens in exactly one world: the
//! 20-location indoor office map of Fig. 10, LOS/NLOS delay profiles,
//! one log-distance path-loss law, USRP2-class radio hardware. A
//! [`ChannelEnvironment`] packages every one of those previously
//! hard-wired choices — the placement map, the per-link large-scale
//! loss and delay-profile selection, the per-node oscillator-offset
//! draw, the [`HardwareProfile`] and the §4 cancellation-depth
//! assumption — behind one trait, so propagation worlds become as
//! pluggable as MAC policies are behind `MacPolicy`.
//!
//! The paper's world is the [`Sigcomm11Indoor`] default implementation,
//! pinned **bit-for-bit** against the pre-environment `build_topology`
//! path by the `environment_regression` suite (identical RNG draws in
//! identical order). Three environments the old closed structs could
//! not express ship alongside it:
//!
//! * [`OutdoorFreeSpace`] — an open 100 m × 65 m field: every link LOS,
//!   free-space exponent-2 loss over much longer ranges, near-flat
//!   two-tap channels;
//! * [`RichScatter`] — a heavily cluttered all-NLOS world: pure
//!   Rayleigh fading with a deep 12-tap delay spread, heavier
//!   shadowing, Gaussian oscillator offsets;
//! * [`DegradedHardware`] — the indoor world on worn radios: EVM and
//!   calibration stress that drops the achievable cancellation depth to
//!   ~17 dB, honestly reflected in the §4 power-control threshold `L`
//!   ([`ChannelEnvironment::join_power_l_db`]).
//!
//! Environments resolve by name through [`environment_from_name`] — the
//! same registry pattern as `policy_from_name` — and plug into
//! `SweepSpec::environment(..)` / `sweep --env` at the simulation layer.

use crate::fading::DelayProfile;
use crate::impairments::HardwareProfile;
use crate::pathloss::{sample_normal, LinkBudget, PathLossModel};
use crate::placement::{Location, Testbed};
use rand::RngCore;
use std::fmt;

/// Errors constructing a scenario's world: today, only a scenario too
/// large for any of the environment's placement maps. (These used to be
/// `assert!` panics inside `Testbed::fitting`/`random_assignment`; they
/// surface as `Result`s through `SweepSpec::try_run` so a bad
/// `--env`/scenario combination reports cleanly.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvironmentError {
    /// The scenario needs more placement slots than the environment's
    /// largest map offers.
    TooManyNodes {
        /// Nodes the scenario wants to place.
        requested: usize,
        /// Slots the largest available map offers.
        capacity: usize,
    },
}

impl fmt::Display for EnvironmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvironmentError::TooManyNodes {
                requested,
                capacity,
            } => write!(f, "cannot place {requested} nodes on {capacity} locations"),
        }
    }
}

impl std::error::Error for EnvironmentError {}

/// How a node's oscillator offset is drawn.
///
/// The seed implementation drew offsets *uniformly* from `±2σ` while
/// naming the knob a sigma; this enum names both draws honestly. The
/// [`Uniform`](OscillatorDraw::Uniform) variant consumes the RNG
/// exactly as the old code did (one `gen::<f64>()`), so the default
/// environment stays bit-identical; [`Gaussian`](OscillatorDraw::Gaussian)
/// is the real normal draw new environments can opt into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OscillatorDraw {
    /// Uniform in `±half_width_hz` — one `gen::<f64>()` per node, the
    /// seed code's draw under its honest name (the old
    /// `oscillator_sigma_hz: σ` is `half_width_hz: 2σ`, bit-identical).
    Uniform {
        /// Half-width of the offset range (Hz).
        half_width_hz: f64,
    },
    /// Normal with standard deviation `sigma_hz` (Box–Muller via
    /// [`sample_normal`]).
    Gaussian {
        /// Standard deviation of the offset (Hz).
        sigma_hz: f64,
    },
}

impl OscillatorDraw {
    /// The seed code's draw — uniform in ±4 kHz (the old
    /// `oscillator_sigma_hz: σ = 2 kHz` consumed as ±2σ) — shared by
    /// every world that keeps the paper's oscillators.
    pub const DEFAULT_UNIFORM: OscillatorDraw = OscillatorDraw::Uniform {
        half_width_hz: 4_000.0,
    };

    /// Draws one oscillator offset (Hz).
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut rng = rng;
        match *self {
            // `(g - 0.5) * 2.0 * hw` rounds identically to the seed
            // code's `(g - 0.5) * 4.0 * σ` (power-of-two factors are
            // exact), keeping the default environment bit-for-bit.
            OscillatorDraw::Uniform { half_width_hz } => {
                (rand::Rng::gen::<f64>(&mut rng) - 0.5) * 2.0 * half_width_hz
            }
            OscillatorDraw::Gaussian { sigma_hz } => sample_normal(&mut rng) * sigma_hz,
        }
    }
}

/// A propagation world: every scenario-construction choice the paper's
/// evaluation hard-wired, as one pluggable trait.
///
/// `nplus_medium::topology::build_environment_topology` consumes the
/// hooks in a fixed order (placement shuffle, per-node oscillator
/// draws, then per-link loss + fading draws), so an environment's
/// topologies are a pure function of the seed. Implementations must be
/// stateless (`Send + Sync`): one environment value is shared across
/// sweep worker threads.
pub trait ChannelEnvironment: Send + Sync {
    /// Stable lower-case registry name (`"sigcomm11"`, `"outdoor"`, …)
    /// — what [`environment_from_name`] resolves and the CLI
    /// front-ends print.
    fn name(&self) -> &str;

    /// The largest node count this environment can place.
    fn capacity(&self) -> usize;

    /// The smallest stock placement map with at least `n_nodes` slots.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] when even the largest map is
    /// too small.
    fn testbed(&self, n_nodes: usize) -> Result<Testbed, EnvironmentError>;

    /// LOS/NLOS classification of one link on this environment's map.
    /// Defaults to the map's own wall geometry.
    fn link_is_nlos(&self, testbed: &Testbed, a: &Location, b: &Location) -> bool {
        testbed.link_is_nlos(a, b)
    }

    /// One large-scale loss draw for a link (dB), including shadowing —
    /// consumes whatever RNG the model needs (the indoor default: one
    /// normal draw).
    fn sample_loss_db(&self, distance_m: f64, nlos: bool, rng: &mut dyn RngCore) -> f64;

    /// Amplitude scale (noise-floor-normalized) corresponding to a
    /// loss, i.e. the link budget.
    fn amplitude_scale(&self, loss_db: f64) -> f64;

    /// Small-scale delay profile for a link class. Defaults to the
    /// paper's LOS/NLOS profiles.
    fn delay_profile(&self, nlos: bool) -> DelayProfile {
        if nlos {
            DelayProfile::nlos()
        } else {
            DelayProfile::los()
        }
    }

    /// One per-node oscillator-offset draw (Hz).
    fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64;

    /// Radio hardware quality in this environment (bounds cancellation
    /// depth). Defaults to the paper's USRP2/WLAN-class profile.
    fn hardware(&self) -> HardwareProfile {
        HardwareProfile::default()
    }

    /// The §4 join-power threshold `L` (dB) appropriate to this
    /// environment's hardware — the cancellation depth joiners may
    /// assume. Defaults to the paper's measured [`DEFAULT_L_DB`];
    /// environments with degraded radios must lower it to match
    /// [`HardwareProfile::expected_cancellation_depth_db`].
    fn join_power_l_db(&self) -> f64 {
        DEFAULT_L_DB
    }

    /// Received-power floor (dBm) below which a link is not
    /// materialized at all: topology construction skips the fading draw
    /// and installs nothing, and every consumer treats the absent link
    /// as "below the floor" (no carrier sensed, no interference, no
    /// service). `None` — the default, and the paper's worlds — keeps
    /// today's dense all-pairs wiring bit-for-bit. Drawn losses are
    /// converted for the comparison via
    /// [`received_power_dbm`](ChannelEnvironment::received_power_dbm).
    fn link_floor_dbm(&self) -> Option<f64> {
        None
    }

    /// Hard geometric cutoff (m) for candidate links: pairs farther
    /// apart never even get a loss draw, and sparse construction uses a
    /// spatial grid index at this range instead of the all-pairs scan.
    /// Only consulted when [`link_floor_dbm`](Self::link_floor_dbm) is
    /// set; `None` considers every pair.
    fn max_link_range(&self) -> Option<f64> {
        None
    }

    /// Received power (dBm) corresponding to one drawn large-scale
    /// loss, used for the [`link_floor_dbm`](Self::link_floor_dbm)
    /// test. Defaults to the paper's USRP2 transmit power minus the
    /// loss; environments that set a floor and transmit at a different
    /// power must override to their own budget.
    fn received_power_dbm(&self, loss_db: f64) -> f64 {
        LinkBudget::usrp2().tx_power_dbm - loss_db
    }

    /// Assigns `n_nodes` scenario nodes to concrete locations on
    /// `testbed`. Defaults to the paper's uniform random assignment
    /// (one shuffle — RNG consumption identical to the seed code);
    /// structured worlds whose scenario families index the map
    /// positionally (the `multi_cell` city grid) override with the
    /// identity layout, which consumes no RNG.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] when the map is too small.
    fn assign_placements(
        &self,
        testbed: &Testbed,
        n_nodes: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Location>, EnvironmentError> {
        let mut rng = rng;
        testbed.try_random_assignment(n_nodes, &mut rng)
    }
}

/// The protocol's cancellation-depth parameter `L`, dB. The paper uses
/// 27 dB (Fig. 11's vertical threshold); this is the one source of
/// truth both the simulator's `SimConfig` default and
/// [`ChannelEnvironment::join_power_l_db`] draw from.
pub const DEFAULT_L_DB: f64 = 27.0;

/// The paper's world (§6, Fig. 10): the 20-location indoor office map
/// (two-wing 40-location extension for larger scenarios), log-distance
/// loss with LOS/NLOS exponents and wall penetration, Rician/Rayleigh
/// LOS/NLOS delay profiles, uniform `±4 kHz` oscillator offsets and
/// USRP2-class hardware.
///
/// This is the **default environment** and is pinned bit-for-bit
/// against the pre-environment `build_topology` path (the
/// `environment_regression` suite): identical RNG draws in identical
/// order, exact `f64` equality. The public fields let `build_topology`
/// keep its old `TopologyConfig` surface as a thin wrapper.
#[derive(Debug, Clone)]
pub struct Sigcomm11Indoor {
    /// Large-scale propagation model.
    pub path_loss: PathLossModel,
    /// Power/noise budget.
    pub budget: LinkBudget,
    /// Oscillator offset draw.
    pub oscillator: OscillatorDraw,
    /// Radio hardware quality.
    pub hardware: HardwareProfile,
    /// Explicit placement map override; `None` picks the smallest
    /// stock map that fits ([`Testbed::try_fitting`]).
    pub testbed: Option<Testbed>,
}

impl Sigcomm11Indoor {
    /// The paper's parameters, exactly as the seed code hard-coded
    /// them (`const` so the registry can hold a static instance).
    pub const fn new() -> Self {
        Sigcomm11Indoor {
            path_loss: PathLossModel::indoor(),
            budget: LinkBudget::usrp2(),
            oscillator: OscillatorDraw::DEFAULT_UNIFORM,
            hardware: HardwareProfile::wlan_class(),
            testbed: None,
        }
    }
}

impl Default for Sigcomm11Indoor {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelEnvironment for Sigcomm11Indoor {
    fn name(&self) -> &str {
        "sigcomm11"
    }

    fn capacity(&self) -> usize {
        match &self.testbed {
            Some(tb) => tb.len(),
            None => Testbed::sigcomm11_extended().len(),
        }
    }

    fn testbed(&self, n_nodes: usize) -> Result<Testbed, EnvironmentError> {
        match &self.testbed {
            Some(tb) => {
                tb.ensure_capacity(n_nodes)?;
                Ok(tb.clone())
            }
            None => Testbed::try_fitting(n_nodes),
        }
    }

    fn sample_loss_db(&self, distance_m: f64, nlos: bool, rng: &mut dyn RngCore) -> f64 {
        let mut rng = rng;
        self.path_loss.sample_loss_db(distance_m, nlos, &mut rng)
    }

    fn amplitude_scale(&self, loss_db: f64) -> f64 {
        self.budget.amplitude_scale(loss_db)
    }

    fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64 {
        self.oscillator.sample(rng)
    }

    fn hardware(&self) -> HardwareProfile {
        self.hardware
    }
}

/// An open outdoor field: all-LOS free-space propagation (exponent 2,
/// light shadowing) over a 100 m × 65 m grid of 40 candidate locations
/// — link ranges several times the indoor map's — with a stronger
/// outdoor transmit budget, near-flat strongly Rician two-tap channels
/// and stock hardware. Registry name `"outdoor"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutdoorFreeSpace;

impl OutdoorFreeSpace {
    /// Free-space log-distance model: exponent 2 everywhere, no walls.
    pub const PATH_LOSS: PathLossModel = PathLossModel {
        pl0_db: 68.0,
        exponent_los: 2.0,
        exponent_nlos: 2.0,
        wall_loss_db: 0.0,
        shadowing_sigma_db: 2.0,
    };
    /// Outdoor radios transmit hotter (20 dBm) to span the field.
    pub const BUDGET: LinkBudget = LinkBudget {
        tx_power_dbm: 20.0,
        noise_floor_dbm: -98.0,
    };
    /// Near-flat strongly Rician channel: two taps, dominant direct
    /// path.
    pub const DELAY_PROFILE: DelayProfile = DelayProfile {
        n_taps: 2,
        decay_db_per_tap: 8.0,
        rician_k: 10.0,
    };
}

impl ChannelEnvironment for OutdoorFreeSpace {
    fn name(&self) -> &str {
        "outdoor"
    }

    fn capacity(&self) -> usize {
        Testbed::outdoor_field().len()
    }

    fn testbed(&self, n_nodes: usize) -> Result<Testbed, EnvironmentError> {
        let tb = Testbed::outdoor_field();
        tb.ensure_capacity(n_nodes)?;
        Ok(tb)
    }

    fn link_is_nlos(&self, _testbed: &Testbed, _a: &Location, _b: &Location) -> bool {
        false // free space: nothing to stand behind
    }

    fn sample_loss_db(&self, distance_m: f64, nlos: bool, rng: &mut dyn RngCore) -> f64 {
        let mut rng = rng;
        Self::PATH_LOSS.sample_loss_db(distance_m, nlos, &mut rng)
    }

    fn amplitude_scale(&self, loss_db: f64) -> f64 {
        Self::BUDGET.amplitude_scale(loss_db)
    }

    fn delay_profile(&self, _nlos: bool) -> DelayProfile {
        Self::DELAY_PROFILE
    }

    fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64 {
        OscillatorDraw::DEFAULT_UNIFORM.sample(rng)
    }
}

/// A heavily cluttered all-NLOS world (factory floor / dense office):
/// every link is pure Rayleigh with a deep 12-tap delay spread, the
/// loss law has a single obstructed exponent with heavier shadowing,
/// and oscillator offsets are genuinely Gaussian (the draw the old
/// `oscillator_sigma_hz` field only pretended to make). Registry name
/// `"rich_scatter"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RichScatter;

impl RichScatter {
    /// Obstructed log-distance model: one exponent for every link,
    /// heavier shadowing than the office map.
    pub const PATH_LOSS: PathLossModel = PathLossModel {
        pl0_db: 68.0,
        exponent_los: 2.6,
        exponent_nlos: 2.6,
        wall_loss_db: 3.0,
        shadowing_sigma_db: 4.0,
    };
    /// Deep delay spread, no direct path anywhere.
    pub const DELAY_PROFILE: DelayProfile = DelayProfile {
        n_taps: 12,
        decay_db_per_tap: 1.2,
        rician_k: 0.0,
    };
    /// Gaussian oscillator draw (σ = 2 kHz).
    pub const OSCILLATOR: OscillatorDraw = OscillatorDraw::Gaussian { sigma_hz: 2_000.0 };
}

impl ChannelEnvironment for RichScatter {
    fn name(&self) -> &str {
        "rich_scatter"
    }

    fn capacity(&self) -> usize {
        Testbed::sigcomm11_extended().len()
    }

    fn testbed(&self, n_nodes: usize) -> Result<Testbed, EnvironmentError> {
        // The office geometry with every location behind clutter.
        let base = Testbed::try_fitting(n_nodes)?;
        Ok(Testbed::from_locations(
            base.locations()
                .iter()
                .map(|l| Location {
                    pos: l.pos,
                    nlos: true,
                })
                .collect(),
        ))
    }

    fn link_is_nlos(&self, _testbed: &Testbed, _a: &Location, _b: &Location) -> bool {
        true // everything scatters
    }

    fn sample_loss_db(&self, distance_m: f64, nlos: bool, rng: &mut dyn RngCore) -> f64 {
        let mut rng = rng;
        Self::PATH_LOSS.sample_loss_db(distance_m, nlos, &mut rng)
    }

    fn amplitude_scale(&self, loss_db: f64) -> f64 {
        LinkBudget::usrp2().amplitude_scale(loss_db)
    }

    fn delay_profile(&self, _nlos: bool) -> DelayProfile {
        Self::DELAY_PROFILE
    }

    fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64 {
        Self::OSCILLATOR.sample(rng)
    }
}

/// The indoor world on worn radios: placement, propagation and fading
/// are bit-identical to [`Sigcomm11Indoor`] (same draws, same order),
/// but the hardware carries a 10 dB-worse EVM floor, 3× the calibration
/// residual and a 10 dB-worse channel estimator —
/// [`HardwareProfile::degraded`] — dropping the expected cancellation
/// depth from the paper's 25–27 dB to ~17 dB. The §4 threshold `L`
/// follows the hardware honestly
/// ([`join_power_l_db`](ChannelEnvironment::join_power_l_db) ≈ 17 dB),
/// stress-testing the paper's cancellation-depth assumption. Registry
/// name `"degraded_hardware"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradedHardware;

impl ChannelEnvironment for DegradedHardware {
    fn name(&self) -> &str {
        "degraded_hardware"
    }

    fn capacity(&self) -> usize {
        SIGCOMM11_INDOOR.capacity()
    }

    fn testbed(&self, n_nodes: usize) -> Result<Testbed, EnvironmentError> {
        SIGCOMM11_INDOOR.testbed(n_nodes)
    }

    fn sample_loss_db(&self, distance_m: f64, nlos: bool, rng: &mut dyn RngCore) -> f64 {
        SIGCOMM11_INDOOR.sample_loss_db(distance_m, nlos, rng)
    }

    fn amplitude_scale(&self, loss_db: f64) -> f64 {
        SIGCOMM11_INDOOR.amplitude_scale(loss_db)
    }

    fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64 {
        SIGCOMM11_INDOOR.oscillator_offset_hz(rng)
    }

    fn hardware(&self) -> HardwareProfile {
        HardwareProfile::degraded()
    }

    fn join_power_l_db(&self) -> f64 {
        // The honest L: joiners may only assume the depth this
        // hardware can actually deliver (~17 dB, not the paper's 27).
        HardwareProfile::degraded().expected_cancellation_depth_db()
    }
}

/// A procedurally generated city district: a square grid of cells 45 m
/// apart, each one AP surrounded by seven stations 4–12 m out (the
/// [`Testbed::multi_cell`] map, up to [`MultiCell::CAPACITY`] slots).
/// Urban log-distance loss (exponent 3.2 LOS / 3.8 NLOS, 6 dB
/// shadowing) over a hot 20 dBm budget, and — the point of this world —
/// a **sparse link set**: pairs beyond [`MultiCell::MAX_LINK_RANGE_M`]
/// are never considered, and drawn links whose received power lands
/// below [`MultiCell::LINK_FLOOR_DBM`] are not materialized. In-cell
/// links (≤ 12 m) always clear the floor; adjacent-cell links survive
/// only on shadowing upswings (~1 in 6), so each node keeps a handful
/// of neighbors instead of thousands. Placement is the identity layout
/// (the `city:` scenario family indexes cells positionally). Registry
/// name `"multi_cell"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiCell;

impl MultiCell {
    /// Largest node count the procedural map serves (512 cells × 8).
    pub const CAPACITY: usize = 4096;
    /// Links farther than this never get a loss draw (two cell rings).
    pub const MAX_LINK_RANGE_M: f64 = 100.0;
    /// Received-power floor: links landing below are not materialized.
    pub const LINK_FLOOR_DBM: f64 = -95.0;
    /// Urban log-distance model: elevated exponents, heavy shadowing.
    pub const PATH_LOSS: PathLossModel = PathLossModel {
        pl0_db: 68.0,
        exponent_los: 3.2,
        exponent_nlos: 3.5,
        wall_loss_db: 3.0,
        shadowing_sigma_db: 6.0,
    };
    /// City radios transmit hot (20 dBm) over the urban noise floor.
    pub const BUDGET: LinkBudget = LinkBudget {
        tx_power_dbm: 20.0,
        noise_floor_dbm: -98.0,
    };
}

impl ChannelEnvironment for MultiCell {
    fn name(&self) -> &str {
        "multi_cell"
    }

    fn capacity(&self) -> usize {
        Self::CAPACITY
    }

    fn testbed(&self, n_nodes: usize) -> Result<Testbed, EnvironmentError> {
        if n_nodes > Self::CAPACITY {
            return Err(EnvironmentError::TooManyNodes {
                requested: n_nodes,
                capacity: Self::CAPACITY,
            });
        }
        // Generate exactly enough whole cells to cover the request.
        let cells = n_nodes.div_ceil(crate::placement::MULTI_CELL_GROUP).max(1);
        Ok(Testbed::multi_cell(cells))
    }

    fn sample_loss_db(&self, distance_m: f64, nlos: bool, rng: &mut dyn RngCore) -> f64 {
        let mut rng = rng;
        Self::PATH_LOSS.sample_loss_db(distance_m, nlos, &mut rng)
    }

    fn amplitude_scale(&self, loss_db: f64) -> f64 {
        Self::BUDGET.amplitude_scale(loss_db)
    }

    fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64 {
        OscillatorDraw::DEFAULT_UNIFORM.sample(rng)
    }

    fn link_floor_dbm(&self) -> Option<f64> {
        Some(Self::LINK_FLOOR_DBM)
    }

    fn max_link_range(&self) -> Option<f64> {
        Some(Self::MAX_LINK_RANGE_M)
    }

    fn received_power_dbm(&self, loss_db: f64) -> f64 {
        Self::BUDGET.tx_power_dbm - loss_db
    }

    fn assign_placements(
        &self,
        testbed: &Testbed,
        n_nodes: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<Location>, EnvironmentError> {
        // Identity layout: scenario node i occupies map slot i, so the
        // `city:` family's cell structure (slot 8k = cell k's AP) maps
        // straight onto the grid. Consumes no RNG — city topologies
        // still vary by seed through shadowing and fading draws.
        testbed.ensure_capacity(n_nodes)?;
        Ok(testbed.locations()[..n_nodes].to_vec())
    }
}

/// The paper's world as a static, for registries and defaults.
pub static SIGCOMM11_INDOOR: Sigcomm11Indoor = Sigcomm11Indoor::new();
/// [`OutdoorFreeSpace`] as a static.
pub static OUTDOOR_FREE_SPACE: OutdoorFreeSpace = OutdoorFreeSpace;
/// [`RichScatter`] as a static.
pub static RICH_SCATTER: RichScatter = RichScatter;
/// [`DegradedHardware`] as a static.
pub static DEGRADED_HARDWARE: DegradedHardware = DegradedHardware;
/// [`MultiCell`] as a static.
pub static MULTI_CELL: MultiCell = MultiCell;

/// The built-in environments by name, for CLI front-ends and
/// `SweepSpec::environment_named`: `"sigcomm11"` (the default),
/// `"outdoor"`, `"rich_scatter"`, `"degraded_hardware"`,
/// `"multi_cell"`.
pub fn environment_from_name(name: &str) -> Option<&'static dyn ChannelEnvironment> {
    Some(match name {
        "sigcomm11" => &SIGCOMM11_INDOOR,
        "outdoor" => &OUTDOOR_FREE_SPACE,
        "rich_scatter" => &RICH_SCATTER,
        "degraded_hardware" => &DEGRADED_HARDWARE,
        "multi_cell" => &MULTI_CELL,
        _ => return None,
    })
}

/// Names of every built-in environment, in presentation order.
pub const BUILTIN_ENVIRONMENT_NAMES: [&str; 5] = [
    "sigcomm11",
    "outdoor",
    "rich_scatter",
    "degraded_hardware",
    "multi_cell",
];

// One environment value is shared by every worker thread of a sweep.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Sigcomm11Indoor>();
    assert_send_sync::<OutdoorFreeSpace>();
    assert_send_sync::<RichScatter>();
    assert_send_sync::<DegradedHardware>();
    assert_send_sync::<MultiCell>();
    assert_send_sync::<&dyn ChannelEnvironment>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn builtin_names_round_trip_through_the_registry() {
        for name in BUILTIN_ENVIRONMENT_NAMES {
            let env = environment_from_name(name).expect("builtin must resolve");
            assert_eq!(env.name(), name);
        }
        assert!(environment_from_name("anechoic_chamber").is_none());
    }

    #[test]
    fn uniform_draw_is_bit_identical_to_the_seed_code() {
        // The seed code: `(gen::<f64>() - 0.5) * 4.0 * σ` with σ = 2 kHz.
        let draw = OscillatorDraw::Uniform {
            half_width_hz: 4_000.0,
        };
        for seed in 0..200u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let old = (a.gen::<f64>() - 0.5) * 4.0 * 2_000.0;
            let new = draw.sample(&mut b);
            assert_eq!(old.to_bits(), new.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn gaussian_draw_has_normal_moments() {
        let draw = OscillatorDraw::Gaussian { sigma_hz: 2_000.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| draw.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 60.0, "mean {mean}");
        assert!((var.sqrt() - 2_000.0).abs() < 100.0, "sigma {}", var.sqrt());
    }

    #[test]
    fn sigcomm11_matches_the_seed_defaults() {
        let env = Sigcomm11Indoor::default();
        assert_eq!(env.path_loss.pl0_db, PathLossModel::default().pl0_db);
        assert_eq!(env.budget.tx_power_dbm, LinkBudget::default().tx_power_dbm);
        assert_eq!(env.hardware.tx_evm_db, HardwareProfile::default().tx_evm_db);
        assert_eq!(env.join_power_l_db(), 27.0);
        assert_eq!(env.testbed(6).unwrap().len(), 20);
        assert_eq!(env.testbed(21).unwrap().len(), 40);
        assert_eq!(env.capacity(), 40);
        assert_eq!(
            env.testbed(41),
            Err(EnvironmentError::TooManyNodes {
                requested: 41,
                capacity: 40
            })
        );
    }

    #[test]
    fn sigcomm11_testbed_override_is_respected() {
        let small = Testbed::from_locations(Testbed::sigcomm11().locations()[..4].to_vec());
        let env = Sigcomm11Indoor {
            testbed: Some(small),
            ..Sigcomm11Indoor::default()
        };
        assert_eq!(env.capacity(), 4);
        assert_eq!(env.testbed(4).unwrap().len(), 4);
        assert!(matches!(
            env.testbed(5),
            Err(EnvironmentError::TooManyNodes {
                requested: 5,
                capacity: 4
            })
        ));
    }

    #[test]
    fn outdoor_is_all_los_with_longer_ranges() {
        let env = OutdoorFreeSpace;
        let tb = env.testbed(32).expect("40-slot field");
        assert_eq!(tb.len(), 40);
        assert!(tb.locations().iter().all(|l| !l.nlos));
        let locs = tb.locations();
        let mut max_d = 0.0f64;
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                max_d = max_d.max(locs[i].pos.distance(&locs[j].pos));
                assert!(!env.link_is_nlos(&tb, &locs[i], &locs[j]));
            }
        }
        // Several times the indoor map's ~17 m diagonal.
        assert!(max_d > 80.0, "outdoor span only {max_d:.1} m");
        // SNRs stay in an operable band across the whole field.
        assert!(mean_snr_db(&env, 12.0) < 35.0 && mean_snr_db(&env, 12.0) > 20.0);
        assert!(
            mean_snr_db(&env, max_d) > 5.0,
            "edge SNR {:.1}",
            mean_snr_db(&env, max_d)
        );
        // Strong direct path: LOS-profile variance below NLOS's.
        assert!(env.delay_profile(false).rician_k > DelayProfile::los().rician_k);
    }

    #[test]
    fn rich_scatter_is_all_nlos_rayleigh() {
        let env = RichScatter;
        let tb = env.testbed(6).unwrap();
        assert!(tb.locations().iter().all(|l| l.nlos));
        let a = tb.locations()[0];
        let b = tb.locations()[1];
        assert!(env.link_is_nlos(&tb, &a, &b));
        let p = env.delay_profile(false);
        assert_eq!(p.rician_k, 0.0, "pure Rayleigh");
        assert!(p.n_taps > DelayProfile::nlos().n_taps, "deeper spread");
        // Gaussian oscillator draw consumes two uniforms (Box–Muller),
        // not one — genuinely a different distribution.
        let mut rng = StdRng::seed_from_u64(9);
        let x = env.oscillator_offset_hz(&mut rng);
        assert!(x.is_finite());
    }

    #[test]
    fn degraded_hardware_shares_the_indoor_world() {
        let env = DegradedHardware;
        // Identical world draws, different hardware.
        for seed in 0..20u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            assert_eq!(
                env.sample_loss_db(7.0, true, &mut a).to_bits(),
                SIGCOMM11_INDOOR.sample_loss_db(7.0, true, &mut b).to_bits()
            );
            assert_eq!(
                env.oscillator_offset_hz(&mut a).to_bits(),
                SIGCOMM11_INDOOR.oscillator_offset_hz(&mut b).to_bits()
            );
        }
        let depth = env.hardware().expected_cancellation_depth_db();
        assert!(
            (15.0..20.0).contains(&depth),
            "degraded cancellation depth {depth:.1} dB"
        );
        // L follows the hardware, not the paper's 27 dB assumption.
        assert_eq!(env.join_power_l_db(), depth);
        assert!(env.join_power_l_db() < SIGCOMM11_INDOOR.join_power_l_db() - 5.0);
    }

    #[test]
    fn dense_worlds_have_no_floor_by_default() {
        for name in ["sigcomm11", "outdoor", "rich_scatter", "degraded_hardware"] {
            let env = environment_from_name(name).unwrap();
            assert_eq!(env.link_floor_dbm(), None, "{name}");
            assert_eq!(env.max_link_range(), None, "{name}");
        }
        // Default received-power conversion uses the paper's 12 dBm
        // USRP2 transmit power.
        assert_eq!(SIGCOMM11_INDOOR.received_power_dbm(100.0), -88.0);
    }

    #[test]
    fn default_assignment_hook_is_the_seed_shuffle_bitwise() {
        let tb = Testbed::sigcomm11();
        for seed in 0..20u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let direct = tb.try_random_assignment(6, &mut a).unwrap();
            let hooked = SIGCOMM11_INDOOR.assign_placements(&tb, 6, &mut b).unwrap();
            for (x, y) in direct.iter().zip(&hooked) {
                assert_eq!(x.pos.x.to_bits(), y.pos.x.to_bits());
                assert_eq!(x.pos.y.to_bits(), y.pos.y.to_bits());
            }
            // And the RNGs are left in the same state.
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn multi_cell_is_a_sparse_city() {
        let env = MultiCell;
        assert_eq!(env.name(), "multi_cell");
        assert_eq!(env.capacity(), 4096);
        assert_eq!(env.link_floor_dbm(), Some(-95.0));
        assert_eq!(env.max_link_range(), Some(100.0));
        // Maps grow in whole cells sized to the request.
        assert_eq!(env.testbed(9).unwrap().len(), 16);
        assert_eq!(env.testbed(1024).unwrap().len(), 1024);
        assert!(matches!(
            env.testbed(4097),
            Err(EnvironmentError::TooManyNodes {
                requested: 4097,
                capacity: 4096
            })
        ));
        // Identity placement: no RNG consumed, slot i for node i.
        let tb = env.testbed(16).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let before = StdRng::seed_from_u64(5).gen::<u64>();
        let placed = env.assign_placements(&tb, 16, &mut rng).unwrap();
        assert_eq!(rng.gen::<u64>(), before, "identity layout draws nothing");
        for (i, l) in placed.iter().enumerate() {
            assert_eq!(l.pos.x.to_bits(), tb.locations()[i].pos.x.to_bits());
        }
        // In-cell links (<= 10 m) clear the floor by a wide margin even
        // on shadowing downswings; a full cell spacing rarely does.
        let mut rng = StdRng::seed_from_u64(1);
        let mut in_cell_ok = 0;
        let mut cross_ok = 0;
        let n = 2000;
        for _ in 0..n {
            let near = env.sample_loss_db(10.0, false, &mut rng);
            let far = env.sample_loss_db(45.0, false, &mut rng);
            if env.received_power_dbm(near) >= MultiCell::LINK_FLOOR_DBM {
                in_cell_ok += 1;
            }
            if env.received_power_dbm(far) >= MultiCell::LINK_FLOOR_DBM {
                cross_ok += 1;
            }
        }
        assert!(
            in_cell_ok > n * 95 / 100,
            "in-cell survival {in_cell_ok}/{n}"
        );
        assert!(cross_ok < n / 2, "cross-cell survival {cross_ok}/{n}");
        assert!(cross_ok > 0, "some cross-cell interference survives");
        // In-cell SNR lands in an operable band.
        let snr = mean_snr_db(&env, 8.0);
        assert!((10.0..40.0).contains(&snr), "in-cell SNR {snr:.1} dB");
    }

    /// Mean link SNR (dB) at a distance under an environment, shadowing
    /// averaged out over many draws.
    fn mean_snr_db(env: &dyn ChannelEnvironment, d: f64) -> f64 {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        (0..n)
            .map(|_| {
                let loss = env.sample_loss_db(d, false, &mut rng);
                20.0 * env.amplitude_scale(loss).log10()
            })
            .sum::<f64>()
            / n as f64
    }
}
