//! Testbed geometry.
//!
//! The paper evaluates over random assignments of nodes to ~20 marked
//! locations in an indoor testbed (Fig. 10), mixing line-of-sight and
//! non-line-of-sight links. We model the same methodology: a fixed set of
//! candidate locations in a rectangular floor plan, some tagged NLOS
//! (behind walls), and experiments draw random assignments of nodes to
//! locations.

use crate::environment::EnvironmentError;
use rand::seq::SliceRandom;
use rand::Rng;

/// A 2-D position in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point (m).
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// One candidate node location in the testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    /// Position on the floor plan.
    pub pos: Point,
    /// Whether this spot sits behind an interior wall (adds extra loss
    /// and richer multipath on its links).
    pub nlos: bool,
}

/// The testbed floor plan: a set of candidate locations.
#[derive(Debug, Clone, PartialEq)]
pub struct Testbed {
    locations: Vec<Location>,
}

impl Testbed {
    /// The default floor plan modeled after the paper's Fig. 10: twenty
    /// locations spread over a ~16 m × 10 m office area, six of them
    /// behind interior walls (NLOS).
    pub fn sigcomm11() -> Self {
        let mut locations = Vec::new();
        // Open-plan area (LOS cluster).
        let los = [
            (1.0, 1.5),
            (3.0, 2.0),
            (5.5, 1.0),
            (7.0, 3.0),
            (9.0, 1.5),
            (11.0, 2.5),
            (13.0, 1.0),
            (15.0, 2.0),
            (2.0, 5.0),
            (4.5, 6.0),
            (7.5, 5.5),
            (10.0, 6.5),
            (12.5, 5.0),
            (15.0, 6.0),
        ];
        for &(x, y) in &los {
            locations.push(Location {
                pos: Point::new(x, y),
                nlos: false,
            });
        }
        // Offices along the far wall (NLOS cluster).
        let nlos = [
            (1.5, 9.0),
            (4.0, 9.5),
            (6.5, 9.0),
            (9.5, 9.5),
            (12.0, 9.0),
            (14.5, 9.5),
        ];
        for &(x, y) in &nlos {
            locations.push(Location {
                pos: Point::new(x, y),
                nlos: true,
            });
        }
        Testbed { locations }
    }

    /// A two-wing extension of the Fig. 10 floor plan: the twenty
    /// [`sigcomm11`](Testbed::sigcomm11) locations plus a mirrored
    /// second wing offset 18 m in x — forty candidate locations in all,
    /// twelve of them NLOS. Dense sweep scenarios (up to 32 nodes) need
    /// more placement slots than the paper's single wing offers; the
    /// first twenty locations are identical to `sigcomm11()`, so draws
    /// that fit the original map remain comparable.
    pub fn sigcomm11_extended() -> Self {
        let base = Self::sigcomm11();
        let mut locations = base.locations.clone();
        locations.extend(base.locations.iter().map(|l| Location {
            pos: Point::new(l.pos.x + 18.0, l.pos.y),
            nlos: l.nlos,
        }));
        Testbed { locations }
    }

    /// The smallest stock floor plan with at least `n` candidate
    /// locations: the paper's map when it fits, the two-wing extension
    /// otherwise.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] when even the extension is
    /// too small.
    pub fn try_fitting(n: usize) -> Result<Self, EnvironmentError> {
        let tb = Self::sigcomm11();
        if n <= tb.len() {
            return Ok(tb);
        }
        let ext = Self::sigcomm11_extended();
        ext.ensure_capacity(n)?;
        Ok(ext)
    }

    /// Panicking convenience over [`try_fitting`](Testbed::try_fitting)
    /// for contexts that statically know the scenario fits.
    pub fn fitting(n: usize) -> Self {
        Self::try_fitting(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// An open 100 m × 65 m outdoor field: an 8 × 5 grid of forty
    /// candidate locations, all line-of-sight — link ranges several
    /// times the indoor map's. The map of the `outdoor` environment.
    pub fn outdoor_field() -> Self {
        let mut locations = Vec::with_capacity(40);
        for yi in 0..5u32 {
            for xi in 0..8u32 {
                locations.push(Location {
                    pos: Point::new(5.0 + 12.0 * xi as f64, 4.0 + 15.0 * yi as f64),
                    nlos: false,
                });
            }
        }
        Testbed { locations }
    }

    /// Builds a testbed from explicit locations.
    pub fn from_locations(locations: Vec<Location>) -> Self {
        Testbed { locations }
    }

    /// All candidate locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Number of candidate locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Checks that the map can place `requested` nodes — the one
    /// capacity check every placement path shares.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] otherwise.
    pub fn ensure_capacity(&self, requested: usize) -> Result<(), EnvironmentError> {
        if requested <= self.locations.len() {
            Ok(())
        } else {
            Err(EnvironmentError::TooManyNodes {
                requested,
                capacity: self.locations.len(),
            })
        }
    }

    /// True when the testbed has no locations.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Draws a random assignment of `n` nodes to distinct locations,
    /// mirroring the paper's "random assignment of nodes to locations in
    /// Fig. 10" methodology.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] when the map has fewer than
    /// `n` locations (the RNG is not consumed in that case).
    pub fn try_random_assignment<R: Rng>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Location>, EnvironmentError> {
        self.ensure_capacity(n)?;
        let mut picks = self.locations.clone();
        picks.shuffle(rng);
        picks.truncate(n);
        Ok(picks)
    }

    /// Panicking convenience over
    /// [`try_random_assignment`](Testbed::try_random_assignment).
    pub fn random_assignment<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Location> {
        self.try_random_assignment(n, rng)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// True when the straight line between two locations crosses the
    /// interior wall region (a simple y = 8 m wall with doorways), used by
    /// the path-loss model to decide LOS/NLOS per *link*.
    pub fn link_is_nlos(&self, a: &Location, b: &Location) -> bool {
        // If either endpoint is in an office, the link crosses the wall
        // unless both are in offices adjacent to each other.
        a.nlos != b.nlos || (a.nlos && b.nlos && a.pos.distance(&b.pos) > 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_testbed_has_twenty_locations() {
        let tb = Testbed::sigcomm11();
        assert_eq!(tb.len(), 20);
        assert_eq!(tb.locations().iter().filter(|l| l.nlos).count(), 6);
    }

    #[test]
    fn extended_testbed_doubles_the_floor_plan() {
        let base = Testbed::sigcomm11();
        let ext = Testbed::sigcomm11_extended();
        assert_eq!(ext.len(), 40);
        assert_eq!(ext.locations().iter().filter(|l| l.nlos).count(), 12);
        // The first wing is bit-identical to the paper's map.
        for (a, b) in base.locations().iter().zip(ext.locations()) {
            assert_eq!(a.pos.x, b.pos.x);
            assert_eq!(a.pos.y, b.pos.y);
            assert_eq!(a.nlos, b.nlos);
        }
        // A 32-node assignment fits the extension.
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(ext.random_assignment(32, &mut rng).len(), 32);
    }

    #[test]
    fn fitting_picks_the_smallest_map() {
        assert_eq!(Testbed::fitting(6).len(), 20);
        assert_eq!(Testbed::fitting(20).len(), 20);
        assert_eq!(Testbed::fitting(21).len(), 40);
        assert_eq!(Testbed::fitting(32).len(), 40);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn fitting_rejects_oversized_requests() {
        let _ = Testbed::fitting(41);
    }

    #[test]
    fn try_fitting_reports_oversize_as_an_error() {
        assert_eq!(Testbed::try_fitting(20).unwrap().len(), 20);
        assert_eq!(Testbed::try_fitting(40).unwrap().len(), 40);
        assert_eq!(
            Testbed::try_fitting(41),
            Err(EnvironmentError::TooManyNodes {
                requested: 41,
                capacity: 40
            })
        );
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(0);
        let err = tb.try_random_assignment(21, &mut rng).unwrap_err();
        assert_eq!(err.to_string(), "cannot place 21 nodes on 20 locations");
    }

    #[test]
    fn outdoor_field_is_a_large_los_grid() {
        let tb = Testbed::outdoor_field();
        assert_eq!(tb.len(), 40);
        assert!(tb.locations().iter().all(|l| !l.nlos));
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(tb.random_assignment(32, &mut rng).len(), 32);
    }

    #[test]
    fn distance_known_value() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_assignment_is_distinct() {
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let picks = tb.random_assignment(6, &mut rng);
            assert_eq!(picks.len(), 6);
            for i in 0..picks.len() {
                for j in (i + 1)..picks.len() {
                    assert!(
                        picks[i].pos.distance(&picks[j].pos) > 1e-9,
                        "two nodes on the same location"
                    );
                }
            }
        }
    }

    #[test]
    fn assignments_vary_with_seed() {
        let tb = Testbed::sigcomm11();
        let a = tb.random_assignment(4, &mut StdRng::seed_from_u64(1));
        let b = tb.random_assignment(4, &mut StdRng::seed_from_u64(2));
        let same = a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.pos.distance(&y.pos) < 1e-12);
        assert!(!same, "different seeds produced identical placements");
    }

    #[test]
    fn cross_wall_links_are_nlos() {
        let tb = Testbed::sigcomm11();
        let open = tb.locations().iter().find(|l| !l.nlos).unwrap();
        let office = tb.locations().iter().find(|l| l.nlos).unwrap();
        assert!(tb.link_is_nlos(open, office));
        assert!(!tb.link_is_nlos(open, open));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_nodes_rejected() {
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = tb.random_assignment(21, &mut rng);
    }
}
