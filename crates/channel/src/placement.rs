//! Testbed geometry.
//!
//! The paper evaluates over random assignments of nodes to ~20 marked
//! locations in an indoor testbed (Fig. 10), mixing line-of-sight and
//! non-line-of-sight links. We model the same methodology: a fixed set of
//! candidate locations in a rectangular floor plan, some tagged NLOS
//! (behind walls), and experiments draw random assignments of nodes to
//! locations.

use crate::environment::EnvironmentError;
use rand::seq::SliceRandom;
use rand::Rng;

/// A 2-D position in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point (m).
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// One candidate node location in the testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    /// Position on the floor plan.
    pub pos: Point,
    /// Whether this spot sits behind an interior wall (adds extra loss
    /// and richer multipath on its links).
    pub nlos: bool,
}

/// The testbed floor plan: a set of candidate locations.
#[derive(Debug, Clone, PartialEq)]
pub struct Testbed {
    locations: Vec<Location>,
}

impl Testbed {
    /// The default floor plan modeled after the paper's Fig. 10: twenty
    /// locations spread over a ~16 m × 10 m office area, six of them
    /// behind interior walls (NLOS).
    pub fn sigcomm11() -> Self {
        let mut locations = Vec::new();
        // Open-plan area (LOS cluster).
        let los = [
            (1.0, 1.5),
            (3.0, 2.0),
            (5.5, 1.0),
            (7.0, 3.0),
            (9.0, 1.5),
            (11.0, 2.5),
            (13.0, 1.0),
            (15.0, 2.0),
            (2.0, 5.0),
            (4.5, 6.0),
            (7.5, 5.5),
            (10.0, 6.5),
            (12.5, 5.0),
            (15.0, 6.0),
        ];
        for &(x, y) in &los {
            locations.push(Location {
                pos: Point::new(x, y),
                nlos: false,
            });
        }
        // Offices along the far wall (NLOS cluster).
        let nlos = [
            (1.5, 9.0),
            (4.0, 9.5),
            (6.5, 9.0),
            (9.5, 9.5),
            (12.0, 9.0),
            (14.5, 9.5),
        ];
        for &(x, y) in &nlos {
            locations.push(Location {
                pos: Point::new(x, y),
                nlos: true,
            });
        }
        Testbed { locations }
    }

    /// A two-wing extension of the Fig. 10 floor plan: the twenty
    /// [`sigcomm11`](Testbed::sigcomm11) locations plus a mirrored
    /// second wing offset 18 m in x — forty candidate locations in all,
    /// twelve of them NLOS. Dense sweep scenarios (up to 32 nodes) need
    /// more placement slots than the paper's single wing offers; the
    /// first twenty locations are identical to `sigcomm11()`, so draws
    /// that fit the original map remain comparable.
    pub fn sigcomm11_extended() -> Self {
        let base = Self::sigcomm11();
        let mut locations = base.locations.clone();
        locations.extend(base.locations.iter().map(|l| Location {
            pos: Point::new(l.pos.x + 18.0, l.pos.y),
            nlos: l.nlos,
        }));
        Testbed { locations }
    }

    /// The smallest stock floor plan with at least `n` candidate
    /// locations: the paper's map when it fits, the two-wing extension
    /// otherwise.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] when even the extension is
    /// too small.
    pub fn try_fitting(n: usize) -> Result<Self, EnvironmentError> {
        let tb = Self::sigcomm11();
        if n <= tb.len() {
            return Ok(tb);
        }
        let ext = Self::sigcomm11_extended();
        ext.ensure_capacity(n)?;
        Ok(ext)
    }

    /// Panicking convenience over [`try_fitting`](Testbed::try_fitting)
    /// for contexts that statically know the scenario fits.
    pub fn fitting(n: usize) -> Self {
        Self::try_fitting(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// An open 100 m × 65 m outdoor field: an 8 × 5 grid of forty
    /// candidate locations, all line-of-sight — link ranges several
    /// times the indoor map's. The map of the `outdoor` environment.
    pub fn outdoor_field() -> Self {
        let mut locations = Vec::with_capacity(40);
        for yi in 0..5u32 {
            for xi in 0..8u32 {
                locations.push(Location {
                    pos: Point::new(5.0 + 12.0 * xi as f64, 4.0 + 15.0 * yi as f64),
                    nlos: false,
                });
            }
        }
        Testbed { locations }
    }

    /// Builds a testbed from explicit locations.
    pub fn from_locations(locations: Vec<Location>) -> Self {
        Testbed { locations }
    }

    /// All candidate locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Number of candidate locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Checks that the map can place `requested` nodes — the one
    /// capacity check every placement path shares.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] otherwise.
    pub fn ensure_capacity(&self, requested: usize) -> Result<(), EnvironmentError> {
        if requested <= self.locations.len() {
            Ok(())
        } else {
            Err(EnvironmentError::TooManyNodes {
                requested,
                capacity: self.locations.len(),
            })
        }
    }

    /// True when the testbed has no locations.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Draws a random assignment of `n` nodes to distinct locations,
    /// mirroring the paper's "random assignment of nodes to locations in
    /// Fig. 10" methodology.
    ///
    /// # Errors
    /// [`EnvironmentError::TooManyNodes`] when the map has fewer than
    /// `n` locations (the RNG is not consumed in that case).
    pub fn try_random_assignment<R: Rng>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Location>, EnvironmentError> {
        self.ensure_capacity(n)?;
        let mut picks = self.locations.clone();
        picks.shuffle(rng);
        picks.truncate(n);
        Ok(picks)
    }

    /// Panicking convenience over
    /// [`try_random_assignment`](Testbed::try_random_assignment).
    pub fn random_assignment<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Location> {
        self.try_random_assignment(n, rng)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// True when the straight line between two locations crosses the
    /// interior wall region (a simple y = 8 m wall with doorways), used by
    /// the path-loss model to decide LOS/NLOS per *link*.
    pub fn link_is_nlos(&self, a: &Location, b: &Location) -> bool {
        // If either endpoint is in an office, the link crosses the wall
        // unless both are in offices adjacent to each other.
        a.nlos != b.nlos || (a.nlos && b.nlos && a.pos.distance(&b.pos) > 4.0)
    }

    /// A procedurally generated city district of `n_cells` cells laid
    /// out on a square grid with [`MULTI_CELL_SPACING_M`] between cell
    /// centers. Each cell contributes [`MULTI_CELL_GROUP`] slots: slot
    /// `8k` is the cell's AP at the center, slots `8k+1..8k+8` are
    /// stations ringed 4–10 m around it (deterministic hash jitter, no
    /// RNG), roughly a third of them behind clutter (NLOS). The map of
    /// the `multi_cell` environment; the `city:` scenario family indexes
    /// cells positionally, so placements use the identity assignment
    /// rather than the paper's shuffle.
    pub fn multi_cell(n_cells: usize) -> Self {
        let cols = (n_cells as f64).sqrt().ceil().max(1.0) as usize;
        let mut locations = Vec::with_capacity(n_cells * MULTI_CELL_GROUP);
        for k in 0..n_cells {
            let cx = (k % cols) as f64 * MULTI_CELL_SPACING_M;
            let cy = (k / cols) as f64 * MULTI_CELL_SPACING_M;
            locations.push(Location {
                pos: Point::new(cx, cy),
                nlos: false,
            });
            for j in 1..MULTI_CELL_GROUP {
                let u = hash01((k * MULTI_CELL_GROUP + j) as u64);
                let angle = j as f64 * std::f64::consts::TAU / (MULTI_CELL_GROUP - 1) as f64
                    + u * std::f64::consts::FRAC_PI_4;
                let radius = 4.0 + 6.0 * hash01((k * MULTI_CELL_GROUP + j) as u64 ^ 0xA5A5);
                locations.push(Location {
                    pos: Point::new(cx + radius * angle.cos(), cy + radius * angle.sin()),
                    nlos: (k + j) % 3 == 0,
                });
            }
        }
        Testbed { locations }
    }
}

/// Slots per `multi_cell` cell: one AP plus seven stations.
pub const MULTI_CELL_GROUP: usize = 8;

/// Distance between adjacent `multi_cell` cell centers (m).
pub const MULTI_CELL_SPACING_M: f64 = 45.0;

/// A deterministic unit-interval hash — procedural map jitter without
/// touching any RNG stream (topologies stay a pure function of seed).
fn hash01(x: u64) -> f64 {
    let h = x
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform-bucket spatial index over placed node positions, so sparse
/// topology construction can ask "which nodes sit within range of node
/// `i`" without the all-pairs scan that caps dense worlds at tens of
/// nodes.
///
/// Neighbor queries return indices in **ascending order** — the sparse
/// build in `nplus-medium` iterates candidates `j > i` ascending so its
/// RNG draw order (and therefore every topology) stays a pure function
/// of the seed, exactly like the dense loop it replaces.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<usize>>,
    points: Vec<Point>,
}

impl SpatialGrid {
    /// Builds the index with `cell_size` meters per bucket (clamped to
    /// a sane minimum; pick the query range for one-ring lookups).
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        let cell = if cell_size.is_finite() && cell_size > 1e-6 {
            cell_size
        } else {
            1.0
        };
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            min_x = 0.0;
            min_y = 0.0;
            max_x = 0.0;
            max_y = 0.0;
        }
        let cols = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let rows = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
        let mut buckets = vec![Vec::new(); cols * rows];
        let mut grid = SpatialGrid {
            cell,
            min_x,
            min_y,
            cols,
            rows,
            buckets: Vec::new(),
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            let (bx, by) = grid.bucket_of(p);
            buckets[by * cols + bx].push(i);
        }
        grid.buckets = buckets;
        grid
    }

    fn bucket_of(&self, p: &Point) -> (usize, usize) {
        let bx = (((p.x - self.min_x) / self.cell).floor() as usize).min(self.cols - 1);
        let by = (((p.y - self.min_y) / self.cell).floor() as usize).min(self.rows - 1);
        (bx, by)
    }

    /// Indices `j > i` whose position lies within `range` meters of
    /// node `i`, in ascending order (the determinism contract above).
    pub fn neighbors_above(&self, i: usize, range: f64) -> Vec<usize> {
        let p = self.points[i];
        let reach = (range / self.cell).ceil() as usize;
        let (bx, by) = self.bucket_of(&p);
        let x0 = bx.saturating_sub(reach);
        let x1 = (bx + reach).min(self.cols - 1);
        let y0 = by.saturating_sub(reach);
        let y1 = (by + reach).min(self.rows - 1);
        let mut out = Vec::new();
        for y in y0..=y1 {
            for x in x0..=x1 {
                for &j in &self.buckets[y * self.cols + x] {
                    if j > i && self.points[j].distance(&p) <= range {
                        out.push(j);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_testbed_has_twenty_locations() {
        let tb = Testbed::sigcomm11();
        assert_eq!(tb.len(), 20);
        assert_eq!(tb.locations().iter().filter(|l| l.nlos).count(), 6);
    }

    #[test]
    fn extended_testbed_doubles_the_floor_plan() {
        let base = Testbed::sigcomm11();
        let ext = Testbed::sigcomm11_extended();
        assert_eq!(ext.len(), 40);
        assert_eq!(ext.locations().iter().filter(|l| l.nlos).count(), 12);
        // The first wing is bit-identical to the paper's map.
        for (a, b) in base.locations().iter().zip(ext.locations()) {
            assert_eq!(a.pos.x, b.pos.x);
            assert_eq!(a.pos.y, b.pos.y);
            assert_eq!(a.nlos, b.nlos);
        }
        // A 32-node assignment fits the extension.
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(ext.random_assignment(32, &mut rng).len(), 32);
    }

    #[test]
    fn fitting_picks_the_smallest_map() {
        assert_eq!(Testbed::fitting(6).len(), 20);
        assert_eq!(Testbed::fitting(20).len(), 20);
        assert_eq!(Testbed::fitting(21).len(), 40);
        assert_eq!(Testbed::fitting(32).len(), 40);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn fitting_rejects_oversized_requests() {
        let _ = Testbed::fitting(41);
    }

    #[test]
    fn try_fitting_reports_oversize_as_an_error() {
        assert_eq!(Testbed::try_fitting(20).unwrap().len(), 20);
        assert_eq!(Testbed::try_fitting(40).unwrap().len(), 40);
        assert_eq!(
            Testbed::try_fitting(41),
            Err(EnvironmentError::TooManyNodes {
                requested: 41,
                capacity: 40
            })
        );
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(0);
        let err = tb.try_random_assignment(21, &mut rng).unwrap_err();
        assert_eq!(err.to_string(), "cannot place 21 nodes on 20 locations");
    }

    #[test]
    fn outdoor_field_is_a_large_los_grid() {
        let tb = Testbed::outdoor_field();
        assert_eq!(tb.len(), 40);
        assert!(tb.locations().iter().all(|l| !l.nlos));
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(tb.random_assignment(32, &mut rng).len(), 32);
    }

    #[test]
    fn distance_known_value() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_assignment_is_distinct() {
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let picks = tb.random_assignment(6, &mut rng);
            assert_eq!(picks.len(), 6);
            for i in 0..picks.len() {
                for j in (i + 1)..picks.len() {
                    assert!(
                        picks[i].pos.distance(&picks[j].pos) > 1e-9,
                        "two nodes on the same location"
                    );
                }
            }
        }
    }

    #[test]
    fn assignments_vary_with_seed() {
        let tb = Testbed::sigcomm11();
        let a = tb.random_assignment(4, &mut StdRng::seed_from_u64(1));
        let b = tb.random_assignment(4, &mut StdRng::seed_from_u64(2));
        let same = a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.pos.distance(&y.pos) < 1e-12);
        assert!(!same, "different seeds produced identical placements");
    }

    #[test]
    fn cross_wall_links_are_nlos() {
        let tb = Testbed::sigcomm11();
        let open = tb.locations().iter().find(|l| !l.nlos).unwrap();
        let office = tb.locations().iter().find(|l| l.nlos).unwrap();
        assert!(tb.link_is_nlos(open, office));
        assert!(!tb.link_is_nlos(open, open));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_nodes_rejected() {
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = tb.random_assignment(21, &mut rng);
    }

    #[test]
    fn multi_cell_map_is_deterministic_cells_of_eight() {
        let a = Testbed::multi_cell(128);
        let b = Testbed::multi_cell(128);
        assert_eq!(a.len(), 128 * MULTI_CELL_GROUP);
        // Procedural generation is a pure function: bit-identical maps.
        for (x, y) in a.locations().iter().zip(b.locations()) {
            assert_eq!(x.pos.x.to_bits(), y.pos.x.to_bits());
            assert_eq!(x.pos.y.to_bits(), y.pos.y.to_bits());
            assert_eq!(x.nlos, y.nlos);
        }
        // Every station sits 4-10 m from its own AP, and adjacent APs
        // are a full cell spacing apart.
        for k in 0..128 {
            let ap = a.locations()[k * MULTI_CELL_GROUP];
            assert!(!ap.nlos, "cell {k}: AP slots are LOS");
            for j in 1..MULTI_CELL_GROUP {
                let d = a.locations()[k * MULTI_CELL_GROUP + j]
                    .pos
                    .distance(&ap.pos);
                assert!((4.0..=10.0).contains(&d), "cell {k} station {j}: {d:.2} m");
            }
        }
        let d01 = a.locations()[0]
            .pos
            .distance(&a.locations()[MULTI_CELL_GROUP].pos);
        assert!((d01 - MULTI_CELL_SPACING_M).abs() < 1e-9);
        let n_nlos = a.locations().iter().filter(|l| l.nlos).count();
        assert!(n_nlos > 128, "clutter exists: {n_nlos} NLOS slots");
    }

    #[test]
    fn spatial_grid_matches_brute_force_ascending() {
        let tb = Testbed::multi_cell(64);
        let points: Vec<Point> = tb.locations().iter().map(|l| l.pos).collect();
        for range in [10.0, 60.0, 120.0] {
            let grid = SpatialGrid::build(&points, range);
            assert_eq!(grid.len(), points.len());
            assert!(!grid.is_empty());
            for i in 0..points.len() {
                let got = grid.neighbors_above(i, range);
                let want: Vec<usize> = (i + 1..points.len())
                    .filter(|&j| points[j].distance(&points[i]) <= range)
                    .collect();
                assert_eq!(got, want, "node {i} at range {range}");
            }
        }
    }

    #[test]
    fn spatial_grid_handles_degenerate_inputs() {
        let empty = SpatialGrid::build(&[], 10.0);
        assert!(empty.is_empty());
        // All points coincident, silly cell size: still well-formed.
        let pts = vec![Point::new(2.0, 2.0); 4];
        let grid = SpatialGrid::build(&pts, 0.0);
        assert_eq!(grid.neighbors_above(0, 1.0), vec![1, 2, 3]);
        assert_eq!(grid.neighbors_above(3, 1.0), Vec::<usize>::new());
    }
}
