//! Additive white Gaussian noise.
//!
//! The medium simulator works in noise-normalized units: every receive
//! antenna adds complex Gaussian noise of unit power, and link amplitudes
//! are scaled so `|h|²` equals the linear SNR. This keeps SNR bookkeeping
//! trivial across the workspace.

use crate::pathloss::sample_normal;
use nplus_linalg::{c64, Complex64};
use rand::Rng;

/// Draws one complex Gaussian noise sample with total power `power`
/// (i.e. variance `power/2` per real dimension).
pub fn noise_sample<R: Rng>(power: f64, rng: &mut R) -> Complex64 {
    let s = (power / 2.0).sqrt();
    c64(sample_normal(rng), sample_normal(rng)).scale(s)
}

/// Adds complex AWGN of the given power to a stream in place.
pub fn add_noise<R: Rng>(stream: &mut [Complex64], power: f64, rng: &mut R) {
    if power <= 0.0 {
        return;
    }
    for z in stream.iter_mut() {
        *z += noise_sample(power, rng);
    }
}

/// A fresh noise stream of length `n` and the given power.
pub fn noise_stream<R: Rng>(n: usize, power: f64, rng: &mut R) -> Vec<Complex64> {
    (0..n).map(|_| noise_sample(power, rng)).collect()
}

/// Measures the average power of a sample stream.
pub fn measure_power(stream: &[Complex64]) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    stream.iter().map(|z| z.norm_sqr()).sum::<f64>() / stream.len() as f64
}

/// Measured SNR (dB) of `signal_plus_noise` given a reference noise power.
pub fn snr_db(signal_power: f64, noise_power: f64) -> f64 {
    10.0 * (signal_power.max(1e-300) / noise_power.max(1e-300)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_power_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(10);
        for &p in &[0.1, 1.0, 4.0] {
            let s = noise_stream(40_000, p, &mut rng);
            let measured = measure_power(&s);
            assert!(
                (measured / p - 1.0).abs() < 0.05,
                "target {p}, measured {measured}"
            );
        }
    }

    #[test]
    fn noise_is_zero_mean_and_circular() {
        let mut rng = StdRng::seed_from_u64(12);
        let s = noise_stream(40_000, 1.0, &mut rng);
        let mean: Complex64 = s
            .iter()
            .copied()
            .sum::<Complex64>()
            .scale(1.0 / s.len() as f64);
        assert!(mean.abs() < 0.02, "mean {mean:?}");
        // Circular symmetry: E[z^2] ≈ 0 (unlike E[|z|^2] = 1).
        let pseudo: Complex64 = s
            .iter()
            .map(|z| *z * *z)
            .sum::<Complex64>()
            .scale(1.0 / s.len() as f64);
        assert!(pseudo.abs() < 0.03, "pseudo-variance {pseudo:?}");
    }

    #[test]
    fn zero_power_adds_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = vec![c64(1.0, 2.0); 8];
        add_noise(&mut s, 0.0, &mut rng);
        for z in s {
            assert!(z.approx_eq(c64(1.0, 2.0), 1e-15));
        }
    }

    #[test]
    fn snr_db_examples() {
        assert!((snr_db(100.0, 1.0) - 20.0).abs() < 1e-9);
        assert!((snr_db(1.0, 1.0)).abs() < 1e-9);
        assert!((snr_db(0.5, 1.0) + 3.0103).abs() < 1e-3);
    }

    #[test]
    fn empty_stream_power_is_zero() {
        assert_eq!(measure_power(&[]), 0.0);
    }
}
