//! `analyze` — the workspace's static-analysis gate.
//!
//! ```text
//! analyze [--root DIR] [--json [FILE]]
//! ```
//!
//! Walks every first-party `.rs` file (vendor/, target/ and fixture
//! corpora excluded), runs the per-crate rule profiles (DESIGN.md §11)
//! and prints one line per unsuppressed finding. `--json` emits the
//! machine-readable report instead — to stdout, or to `FILE` (human
//! summary still on stdout) when a path follows the flag.
//!
//! Exit codes: `0` clean, `1` unsuppressed findings (or a report-write
//! failure), `2` usage errors.

use nplus_analyzer::{render_human, render_json, workspace::analyze_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: analyze [--root DIR] [--json [FILE]]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut json_path: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => return usage_error("--root needs a directory"),
                }
            }
            "--json" => {
                json = true;
                // Optional file operand: anything next that isn't a flag.
                if let Some(next) = args.get(i + 1) {
                    if !next.starts_with("--") {
                        i += 1;
                        json_path = Some(PathBuf::from(next));
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    // Accept either the workspace root or a subdirectory of it: walk
    // up until a directory containing `crates/` appears.
    let root = match find_workspace_root(&root) {
        Some(r) => r,
        None => return usage_error(&format!("{} is not inside the workspace", root.display())),
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let human = render_human(&report.diagnostics, report.files_scanned, report.suppressed);
    if json {
        let doc = render_json(&report.diagnostics, report.files_scanned, report.suppressed);
        match &json_path {
            None => println!("{doc}"),
            Some(path) => {
                if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                    eprintln!("analyze: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                print!("{human}");
            }
        }
    } else {
        print!("{human}");
    }

    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn find_workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("analyze: {msg}\n{USAGE}");
    ExitCode::from(2)
}
