//! A minimal Rust lexer: just enough token structure for the rule
//! engine, with the two properties that matter here:
//!
//! * **Comments and string literals are classified, never matched as
//!   code.** `// thread_rng` in a comment or `"Instant::now"` in a
//!   string must not trip a rule; conversely, allow-annotations live in
//!   line comments and must be found there. Handled: line comments,
//!   nested block comments, string/char/byte-string literals, raw
//!   strings (`r"…"`, `r#"…"#`, any number of `#`s), and the
//!   lifetime-vs-char-literal ambiguity.
//! * **No panics on arbitrary input.** The scanner walks raw bytes
//!   with bounds-checked access only; unterminated literals, stray
//!   continuation bytes and malformed escapes all degrade to tokens,
//!   never to a crash (`tests/lexer_never_panics.rs` proves this with
//!   arbitrary byte soup).
//!
//! The lexer is intentionally lossy about things the rules never look
//! at (numeric suffixes, operator composition): a token is a kind, a
//! byte range and a 1-based line number, nothing more.

/// What a token is, at the granularity the rule engine needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`for`, `unsafe`, `HashMap`, …).
    Ident,
    /// A numeric literal (loosely scanned; suffixes included).
    Number,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, `'x'`.
    Literal,
    /// A lifetime (`'a`) — distinct from a char literal.
    Lifetime,
    /// A `// …` comment, text running to end of line.
    LineComment,
    /// A `/* … */` comment (nesting honored).
    BlockComment,
    /// A single punctuation byte (`.`, `!`, `{`, `:`, …).
    Punct(u8),
}

/// One lexed token: kind, byte range into the source, 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token's classification.
    pub kind: TokKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`; empty if the range is somehow
    /// out of bounds or splits a UTF-8 scalar (never panics).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Lexes `src` into a token stream. Total: every byte is consumed,
/// every input produces some token list, and no input panics.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        let start = i;
        let start_line = line;
        match c {
            b'\n' => {
                line = line.saturating_add(1);
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::LineComment,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line = line.saturating_add(1);
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokKind::BlockComment,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'"' => {
                i = scan_string(b, i, &mut line);
                toks.push(Token {
                    kind: TokKind::Literal,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident
                // start with no closing quote right after one scalar.
                let (end, is_lifetime) = scan_quote(b, i, &mut line);
                i = end;
                toks.push(Token {
                    kind: if is_lifetime {
                        TokKind::Lifetime
                    } else {
                        TokKind::Literal
                    },
                    start,
                    end: i,
                    line: start_line,
                });
            }
            c if is_ident_start(c) => {
                // Raw strings and byte/C strings look like an ident
                // prefix glued to a quote: r", r#", br", b", c", etc.
                if let Some(end) = scan_raw_or_prefixed_string(b, i, &mut line) {
                    i = end;
                    toks.push(Token {
                        kind: TokKind::Literal,
                        start,
                        end: i,
                        line: start_line,
                    });
                } else {
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Ident,
                        start,
                        end: i,
                        line: start_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                // Loose number scan: digits, `_`, alphanumerics
                // (suffixes, hex), and `.` when followed by a digit.
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d == b'_' || d.is_ascii_alphanumeric() {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        i += 2;
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Number,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            c if c.is_ascii() => {
                i += 1;
                toks.push(Token {
                    kind: TokKind::Punct(c),
                    start,
                    end: i,
                    line: start_line,
                });
            }
            _ => {
                // Non-ASCII outside a literal (doc prose in an odd
                // place, exotic idents): consume the byte and move on.
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Scans a `"…"` string starting at the opening quote; returns the
/// index one past the closing quote (or end of input if unterminated).
fn scan_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            b'\n' => {
                *line = line.saturating_add(1);
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans from a `'`: distinguishes lifetimes from char literals and
/// returns `(end_index, is_lifetime)`.
fn scan_quote(b: &[u8], start: usize, line: &mut u32) -> (usize, bool) {
    let mut i = start + 1;
    match b.get(i) {
        Some(b'\\') => {
            // Escaped char literal: skip escape, then run to the quote.
            i = (i + 2).min(b.len());
            while i < b.len() && b[i] != b'\'' {
                if b[i] == b'\n' {
                    *line = line.saturating_add(1);
                }
                i += 1;
            }
            ((i + 1).min(b.len()), false)
        }
        Some(&c) if is_ident_start(c) => {
            // `'a` could be a lifetime or the char 'a'. Look one ahead:
            // a closing quote makes it a char literal.
            if b.get(i + 1) == Some(&b'\'') {
                (i + 2, false)
            } else {
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                (i, true)
            }
        }
        Some(b'\'') => (i + 1, false), // the degenerate `''`
        Some(_) => {
            // Some other single scalar (possibly multi-byte UTF-8).
            while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                i += 1;
            }
            ((i + 1).min(b.len()), false)
        }
        None => (i, false),
    }
}

/// If the ident starting at `i` is really a raw/byte/C string prefix
/// (`r`, `r#…`, `b`, `br`, `c`, `cr` glued to a quote), scans the whole
/// literal and returns its end. `None` means "a plain identifier".
fn scan_raw_or_prefixed_string(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    // Accept at most two prefix letters from {r, b, c} (br, cr, rb…
    // only the real combinations matter; extra leniency is harmless).
    let mut letters = 0;
    let mut raw = false;
    while j < b.len() && letters < 2 {
        match b[j] {
            b'r' => {
                raw = true;
                letters += 1;
                j += 1;
            }
            b'b' | b'c' => {
                letters += 1;
                j += 1;
            }
            _ => break,
        }
    }
    if letters == 0 {
        return None;
    }
    if raw {
        // r, optionally followed by #s, must reach a quote.
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        // Scan to `"` + hashes `#`s. No escapes in raw strings.
        loop {
            if j >= b.len() {
                return Some(j);
            }
            if b[j] == b'\n' {
                *line = line.saturating_add(1);
                j += 1;
                continue;
            }
            if b[j] == b'"' {
                let mut k = 0usize;
                while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes);
                }
            }
            j += 1;
        }
    }
    // b"…" / c"…": cooked string with escapes.
    if b.get(j) == Some(&b'"') {
        return Some(scan_string(b, j, line));
    }
    // b'x' byte char literal.
    if b.get(j) == Some(&b'\'') {
        let (end, _) = scan_quote(b, j, line);
        return Some(end);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = a.keys();");
        assert_eq!(ks[0], (TokKind::Ident, "let".to_string()));
        assert_eq!(ks[1], (TokKind::Ident, "x".to_string()));
        assert_eq!(ks[2], (TokKind::Punct(b'='), "=".to_string()));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "keys"));
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r#"// thread_rng in a comment
let s = "Instant::now inside a string";
/* and /* nested */ block comments too */"#;
        let toks = lex(src);
        let code_idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(code_idents, ["let", "s"]);
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
                .count(),
            2
        );
    }

    #[test]
    fn raw_strings_swallow_their_payload() {
        let src = r###"let x = r#"unwrap() panic!()"#; call();"###;
        let toks = lex(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, ["let", "x", "call"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::Literal && t.text(src).starts_with('\''))
                .count(),
            2
        );
    }

    #[test]
    fn line_numbers_are_1_based_and_advance() {
        let src = "a\nb\n\nc";
        let toks = lex(src);
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn unterminated_everything_still_lexes() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'",
            "b'",
            "let x = \\",
            "r###",
        ] {
            let _ = lex(src); // must not panic
        }
    }
}
