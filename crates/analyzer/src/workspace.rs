//! Workspace walking and per-crate rule profiles.
//!
//! Four profiles exist (DESIGN.md §11):
//!
//! * **deterministic core** — `crates/linalg`, `crates/phy`,
//!   `crates/channel`, `crates/medium`, `crates/mac`, `crates/core`:
//!   wall-clock/entropy rules plus the unordered-iteration rule;
//! * **serving surface** — `crates/server`: wall-clock/entropy rules
//!   plus the panic-free rules (`SRV…`) on non-bin library code;
//! * **deterministic serving** — `crates/codec`: both of the above —
//!   recordings must replay bit-for-bit (determinism) *and* decode
//!   untrusted bytes without panicking (panic-freedom);
//! * **hygiene only** — `crates/testkit`, `crates/bench`,
//!   `crates/analyzer` and the root facade package: the header,
//!   unsafe-whitelist and no-print rules every profile also carries.
//!
//! The walk itself is deterministic (directory entries sorted by
//! name), skips `vendor/` and `target/` entirely, and skips any
//! directory named `fixtures` — the analyzer's own test corpus is
//! *intentionally* full of violations.

use crate::engine::{analyze_source, FileKind};
use crate::report::{sort_diagnostics, Diagnostic};
use crate::rules::{RuleId, RuleSet};
use std::path::{Path, PathBuf};

/// The one place in the workspace where `unsafe` is legal: the
/// counting global allocator behind the per-run arena proof.
pub const UNSAFE_WHITELIST: [&str; 1] = ["crates/bench/tests/alloc_steady_state.rs"];

/// A crate's rule profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Deterministic simulation core.
    DetCore,
    /// Panic-free serving surface.
    Serving,
    /// Both at once: deterministic *and* panic-free (the recording
    /// codec — replay must be bit-exact, decode input is untrusted).
    DetServing,
    /// Hygiene rules only.
    Hygiene,
}

/// First-party crates and their profiles. A `crates/` subdirectory not
/// named here is analyzed under [`Profile::Hygiene`] — new crates are
/// never silently skipped.
pub const CRATE_PROFILES: [(&str, Profile); 11] = [
    ("linalg", Profile::DetCore),
    ("phy", Profile::DetCore),
    ("channel", Profile::DetCore),
    ("medium", Profile::DetCore),
    ("mac", Profile::DetCore),
    ("core", Profile::DetCore),
    ("server", Profile::Serving),
    ("codec", Profile::DetServing),
    ("testkit", Profile::Hygiene),
    ("bench", Profile::Hygiene),
    ("analyzer", Profile::Hygiene),
];

/// The rules active for one file of a crate with the given profile.
pub fn rules_for(profile: Profile, kind: FileKind) -> RuleSet {
    RuleSet {
        // Wall-clock/entropy discipline is a library-wide contract:
        // every profile gets it (bins and tests are exempted by kind
        // inside the engine).
        wall_clock_and_entropy: true,
        map_iteration: matches!(profile, Profile::DetCore | Profile::DetServing),
        serving_surface: matches!(profile, Profile::Serving | Profile::DetServing),
        crate_root_header: kind == FileKind::LibRoot,
        // HYG002 is driven by the whitelist, not the profile.
        no_unsafe: true,
        no_print: true,
    }
}

/// The outcome of a workspace analysis.
#[derive(Debug, Clone)]
pub struct WorkspaceReport {
    /// Unsuppressed findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Well-formed `nplus:allow` annotations across the tree — the
    /// suppression surface a reviewer should glance at.
    pub suppressed: usize,
}

/// Analyzes the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`).
///
/// # Errors
/// An `io::Error` only for a missing/unreadable root; unreadable
/// individual files are reported as findings-free skips rather than
/// aborting the whole run (a permissions quirk must not mask real
/// findings elsewhere).
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files: Vec<(PathBuf, Profile)> = Vec::new();

    // The root facade package: src/, tests/, examples/.
    for dir in ["src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files, Profile::Hygiene);
    }
    // Member crates.
    let crates_dir = root.join("crates");
    for entry in sorted_entries(&crates_dir)? {
        if !entry.is_dir() {
            continue;
        }
        let name = entry
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let profile = CRATE_PROFILES
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .unwrap_or(Profile::Hygiene);
        for dir in ["src", "tests", "benches", "examples"] {
            collect_rs_files(&entry.join(dir), &mut files, profile);
        }
    }

    let mut diagnostics = Vec::new();
    let mut suppressed_total = 0usize;
    let mut scanned = 0usize;
    for (path, profile) in &files {
        let rel = relative_label(root, path);
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        scanned += 1;
        let kind = classify(&rel);
        let rules = rules_for(*profile, kind);
        let mut diags = analyze_source(&rel, &src, kind, rules);
        // The unsafe whitelist is path-based, applied after the fact
        // so whitelisted files still run every *other* rule.
        if UNSAFE_WHITELIST.contains(&rel.as_str()) {
            diags.retain(|d| d.rule != RuleId::Hyg002);
        }
        // Count what the engine suppressed: re-run without allows is
        // overkill; instead the engine reports only unsuppressed
        // findings, so the delta is recomputed cheaply here.
        suppressed_total += count_allows(&src);
        diagnostics.append(&mut diags);
    }
    sort_diagnostics(&mut diagnostics);
    Ok(WorkspaceReport {
        diagnostics,
        files_scanned: scanned,
        suppressed: suppressed_total,
    })
}

/// How many well-formed `nplus:allow` annotations a file carries —
/// reported so a reviewer can see the suppression surface at a glance.
fn count_allows(src: &str) -> usize {
    src.lines()
        .filter(|l| {
            let Some(idx) = l.find("// nplus:allow(") else {
                return false;
            };
            let rest = &l[idx + "// nplus:allow(".len()..];
            rest.find(')').is_some_and(|c| {
                RuleId::from_code(rest[..c].trim()).is_some()
                    && rest[c + 1..].trim_start().starts_with(':')
                    && !rest[c + 1..].trim_start()[1..].trim().is_empty()
            })
        })
        .count()
}

/// Classifies a workspace-relative path into a [`FileKind`].
fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let in_dir = |d: &str| parts.contains(&d);
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileKind::Test;
    }
    if in_dir("bin") || rel.ends_with("src/main.rs") {
        return FileKind::Bin;
    }
    if rel.ends_with("src/lib.rs") {
        return FileKind::LibRoot;
    }
    FileKind::Lib
}

/// Recursively collects `.rs` files under `dir` (deterministic order,
/// `fixtures` directories skipped). Missing directories are fine.
fn collect_rs_files(dir: &Path, out: &mut Vec<(PathBuf, Profile)>, profile: Profile) {
    let Ok(entries) = sorted_entries(dir) else {
        return;
    };
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().map(|n| n.to_string_lossy().into_owned());
            if name.as_deref() == Some("fixtures") {
                continue;
            }
            collect_rs_files(&entry, out, profile);
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push((entry, profile));
        }
    }
}

/// `read_dir` with the OS's arbitrary order replaced by name order —
/// the analyzer holds itself to the determinism contract it enforces.
fn sorted_entries(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// The workspace-relative, `/`-separated label for diagnostics.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for (i, comp) in rel.components().enumerate() {
        if i > 0 {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_layout() {
        assert_eq!(classify("crates/core/src/lib.rs"), FileKind::LibRoot);
        assert_eq!(classify("crates/core/src/sim/engine.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/sweep.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/tests/soa_parity.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/kernels.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), FileKind::LibRoot);
    }

    #[test]
    fn profiles_compose_the_expected_rule_sets() {
        let det = rules_for(Profile::DetCore, FileKind::Lib);
        assert!(det.map_iteration && det.wall_clock_and_entropy && !det.serving_surface);
        let srv = rules_for(Profile::Serving, FileKind::Lib);
        assert!(srv.serving_surface && !srv.map_iteration);
        let both = rules_for(Profile::DetServing, FileKind::Lib);
        assert!(both.serving_surface && both.map_iteration && both.wall_clock_and_entropy);
        let hyg = rules_for(Profile::Hygiene, FileKind::LibRoot);
        assert!(hyg.crate_root_header && hyg.no_print && !hyg.serving_surface);
    }

    #[test]
    fn allow_counter_only_counts_well_formed_annotations() {
        let src = "\
a // nplus:allow(DET001): timing report\n\
b // nplus:allow(DET001)\n\
c // nplus:allow(NOPE42): reason\n\
d // nplus:allow(DET001):   \n";
        assert_eq!(count_allows(src), 1);
    }
}
