//! # nplus-analyzer — the workspace's determinism and panic-free linter
//!
//! The load-bearing guarantees of this reproduction — bit-for-bit
//! determinism across thread counts, caches, SoA storage and sparse
//! worlds, and a panic-free serving surface — are proven at runtime by
//! the determinism suites. This crate machine-checks the *source-level*
//! conventions those proofs rest on, so a violation is caught at lint
//! time instead of as a flaky figure three PRs later:
//!
//! * **Deterministic core** (`nplus-linalg`, `nplus-phy`,
//!   `nplus-channel`, `nplus-medium`, `nplus-mac`, `nplus`): no
//!   wall-clock reads, no entropy-seeded RNG, no unordered
//!   `HashMap`/`HashSet` iteration feeding results.
//! * **Serving surface** (`nplus-server` non-test library code): no
//!   `unwrap`/`expect`/`panic!`-family macros/`process::exit` — every
//!   client byte must map to a typed error, never a panic.
//! * **Workspace hygiene** (every first-party crate): the canonical
//!   `#![forbid(unsafe_code)]` crate-root header, `unsafe` nowhere but
//!   the single whitelisted counting-allocator test, and no
//!   `dbg!`/`println!` in library code.
//!
//! The engine is a small hand-rolled lexer ([`lexer`]) — comment-,
//! string-, raw-string- and `#[cfg(test)]`-aware, never panicking on
//! arbitrary input — plus a token-pattern rule engine ([`engine`]) and
//! per-crate profiles ([`workspace`]). It is deliberately a *heuristic*
//! source checker, not a type checker: the patterns are written for
//! this workspace's house style, and every rule documents exactly what
//! it matches ([`rules`]).
//!
//! Findings are suppressible only by an inline annotation that names
//! the rule **and carries a reason**:
//!
//! ```text
//! let t = Instant::now(); // nplus:allow(DET001): operator-facing latency report only
//! ```
//!
//! A reason-less or unknown-rule annotation is itself a finding. The
//! `analyze` binary walks the workspace and exits non-zero on any
//! unsuppressed finding; CI runs it with `--json` and uploads the
//! report, and `cargo test -p nplus-analyzer` re-runs the same gate
//! in-process (`tests/workspace_clean.rs`) so plain `cargo test`
//! already enforces the contracts.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use engine::{analyze_source, FileKind};
pub use report::{render_human, render_json, Diagnostic};
pub use rules::{RuleId, RuleSet};
pub use workspace::{analyze_workspace, WorkspaceReport};
