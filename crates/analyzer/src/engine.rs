//! The per-file rule engine: lex, carve out `#[cfg(test)]` regions,
//! collect `nplus:allow` annotations, then run the active rules over
//! the token stream.
//!
//! Everything here is a *token-pattern* heuristic, not a type check.
//! The patterns are documented per rule below; where a heuristic can
//! miss (a map passed in by reference and iterated without a local
//! declaration, say) the runtime determinism suites remain the
//! backstop — the linter exists to catch the common shapes at review
//! time, deterministically and in milliseconds.

use crate::lexer::{lex, TokKind, Token};
use crate::report::Diagnostic;
use crate::rules::{RuleId, RuleSet};

/// How a file participates in its crate, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// The crate root (`src/lib.rs`): library code + header check.
    LibRoot,
    /// Library code under `src/` (not `src/bin/`).
    Lib,
    /// A binary target (`src/bin/**`, `src/main.rs`): prints and
    /// `process::exit` are its job.
    Bin,
    /// Test-like targets: `tests/`, `benches/`, `examples/`.
    Test,
}

/// One parsed `// nplus:allow(RULE): reason` annotation.
#[derive(Debug, Clone)]
struct Allow {
    rule: RuleId,
    /// The comment's own line; the suppression covers this line and
    /// the next (so the annotation can trail the finding or sit just
    /// above it).
    line: u32,
}

/// Analyzes one file's source text under the given rules. `path` is
/// only used to label diagnostics. Never panics, whatever the input.
pub fn analyze_source(path: &str, src: &str, kind: FileKind, rules: RuleSet) -> Vec<Diagnostic> {
    let toks = lex(src);
    let test_mask = cfg_test_mask(&toks, src);
    let mut diags = Vec::new();

    // --- The suppression layer -----------------------------------
    let mut allows: Vec<Allow> = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::LineComment) {
        let body = t.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("nplus:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic::new(
                RuleId::Alw001,
                path,
                t.line,
                "unterminated nplus:allow annotation".to_string(),
            ));
            continue;
        };
        let code = rest[..close].trim();
        let tail = rest[close + 1..].trim_start();
        let Some(rule) = RuleId::from_code(code) else {
            diags.push(Diagnostic::new(
                RuleId::Alw002,
                path,
                t.line,
                format!("nplus:allow names unknown rule {code:?}"),
            ));
            continue;
        };
        let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(Diagnostic::new(
                RuleId::Alw001,
                path,
                t.line,
                format!("nplus:allow({code}) needs a reason: `// nplus:allow({code}): <why>`"),
            ));
            continue;
        }
        if !rule.suppressible() {
            diags.push(Diagnostic::new(
                RuleId::Alw002,
                path,
                t.line,
                format!("rule {code} cannot be suppressed"),
            ));
            continue;
        }
        allows.push(Allow { rule, line: t.line });
    }

    // --- Crate-root header (HYG001) -------------------------------
    if rules.crate_root_header && !has_forbid_unsafe_header(&toks, src) {
        diags.push(Diagnostic::new(
            RuleId::Hyg001,
            path,
            1,
            "crate root is missing the canonical `#![forbid(unsafe_code)]` header".to_string(),
        ));
    }

    // --- Token-pattern rules --------------------------------------
    let map_names = if rules.map_iteration {
        collect_map_typed_names(&toks, src)
    } else {
        Vec::new()
    };
    // Work on code tokens only (comments carry no findings except the
    // allow layer above).
    let code_toks: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let text = |t: &Token| t.text(src);
    let is_punct = |t: &Token, c: u8| t.kind == TokKind::Punct(c);
    let is_ident = |t: &Token, s: &str| t.kind == TokKind::Ident && text(t) == s;

    for (i, t) in code_toks.iter().enumerate() {
        let in_test = test_mask.iter().any(|&(s, e)| t.start >= s && t.start < e);
        let next = code_toks.get(i + 1).copied();
        let next2 = code_toks.get(i + 2).copied();
        let prev = i.checked_sub(1).and_then(|j| code_toks.get(j)).copied();
        let prev2 = i.checked_sub(2).and_then(|j| code_toks.get(j)).copied();

        // HYG002 — `unsafe` has no test exemption.
        if rules.no_unsafe && is_ident(t, "unsafe") {
            diags.push(Diagnostic::new(
                RuleId::Hyg002,
                path,
                t.line,
                "`unsafe` outside the whitelisted counting allocator".to_string(),
            ));
        }

        if in_test {
            continue;
        }

        // DET001 — wall clock.
        if rules.wall_clock_and_entropy && kind != FileKind::Bin && kind != FileKind::Test {
            if is_ident(t, "Instant")
                && next.is_some_and(|n| is_punct(n, b':'))
                && code_toks.get(i + 3).is_some_and(|n| is_ident(n, "now"))
            {
                diags.push(Diagnostic::new(
                    RuleId::Det001,
                    path,
                    t.line,
                    "`Instant::now()` reads the wall clock".to_string(),
                ));
            }
            if is_ident(t, "SystemTime") {
                diags.push(Diagnostic::new(
                    RuleId::Det001,
                    path,
                    t.line,
                    "`SystemTime` reads the wall clock".to_string(),
                ));
            }
        }

        // DET002 — entropy randomness.
        if rules.wall_clock_and_entropy
            && kind != FileKind::Bin
            && kind != FileKind::Test
            && (is_ident(t, "thread_rng") || is_ident(t, "from_entropy") || is_ident(t, "OsRng"))
        {
            diags.push(Diagnostic::new(
                RuleId::Det002,
                path,
                t.line,
                format!("`{}` draws operating-system entropy", text(t)),
            ));
        }

        // DET003 — unordered map iteration.
        if rules.map_iteration && !map_names.is_empty() {
            // `name.iter()` / `.keys()` / `.values()` / `.into_iter()`
            // / `.drain()` where `name` is a HashMap/HashSet binding.
            if t.kind == TokKind::Ident
                && matches!(
                    text(t),
                    "iter" | "iter_mut" | "keys" | "values" | "values_mut" | "into_iter" | "drain"
                )
                && next.is_some_and(|n| is_punct(n, b'('))
                && prev.is_some_and(|p| is_punct(p, b'.'))
                && prev2.is_some_and(|p| {
                    p.kind == TokKind::Ident && map_names.iter().any(|m| m == text(p))
                })
            {
                let owner = prev2.map(text).unwrap_or("?");
                diags.push(Diagnostic::new(
                    RuleId::Det003,
                    path,
                    t.line,
                    format!(
                        "`{owner}.{}()` iterates a HashMap/HashSet in arbitrary order",
                        text(t)
                    ),
                ));
            }
            // `for pat in &name` / `for pat in name {`.
            if is_ident(t, "in") {
                let mut j = i + 1;
                while code_toks
                    .get(j)
                    .is_some_and(|n| is_punct(n, b'&') || is_ident(n, "mut"))
                {
                    j += 1;
                }
                if let (Some(name_tok), Some(open)) = (code_toks.get(j), code_toks.get(j + 1)) {
                    if name_tok.kind == TokKind::Ident
                        && map_names.iter().any(|m| m == text(name_tok))
                        && is_punct(open, b'{')
                    {
                        diags.push(Diagnostic::new(
                            RuleId::Det003,
                            path,
                            name_tok.line,
                            format!(
                                "`for … in {}` iterates a HashMap/HashSet in arbitrary order",
                                text(name_tok)
                            ),
                        ));
                    }
                }
            }
        }

        // SRV001 — unwrap/expect.
        if rules.serving_surface
            && kind != FileKind::Bin
            && kind != FileKind::Test
            && t.kind == TokKind::Ident
            && matches!(text(t), "unwrap" | "expect")
            && prev.is_some_and(|p| is_punct(p, b'.'))
            && next.is_some_and(|n| is_punct(n, b'('))
        {
            diags.push(Diagnostic::new(
                RuleId::Srv001,
                path,
                t.line,
                format!("`.{}()` can panic on the serving path", text(t)),
            ));
        }

        // SRV002 — panicking macros.
        if rules.serving_surface
            && kind != FileKind::Bin
            && kind != FileKind::Test
            && t.kind == TokKind::Ident
            && matches!(text(t), "panic" | "unreachable" | "todo" | "unimplemented")
            && next.is_some_and(|n| is_punct(n, b'!'))
            && next2.is_some_and(|n| is_punct(n, b'(') || is_punct(n, b'[') || is_punct(n, b'{'))
        {
            diags.push(Diagnostic::new(
                RuleId::Srv002,
                path,
                t.line,
                format!("`{}!` panics on the serving path", text(t)),
            ));
        }

        // SRV003 — process::exit.
        if rules.serving_surface
            && kind != FileKind::Bin
            && kind != FileKind::Test
            && is_ident(t, "exit")
            && prev.is_some_and(|p| is_punct(p, b':'))
            && code_toks
                .get(i.wrapping_sub(3))
                .is_some_and(|p| is_ident(p, "process"))
        {
            diags.push(Diagnostic::new(
                RuleId::Srv003,
                path,
                t.line,
                "`process::exit` tears down the whole server".to_string(),
            ));
        }

        // HYG003 — stdout prints in library code.
        if rules.no_print
            && kind != FileKind::Bin
            && kind != FileKind::Test
            && t.kind == TokKind::Ident
            && matches!(text(t), "println" | "print" | "dbg")
            && next.is_some_and(|n| is_punct(n, b'!'))
        {
            diags.push(Diagnostic::new(
                RuleId::Hyg003,
                path,
                t.line,
                format!("`{}!` in library code pollutes stdout", text(t)),
            ));
        }
    }

    // --- Apply suppressions ---------------------------------------
    let mut out = Vec::new();
    for d in diags {
        let suppressed = d.rule.suppressible()
            && allows
                .iter()
                .any(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line));
        if !suppressed {
            out.push(d);
        }
    }
    out.sort_by_key(|d| (d.line, d.rule));
    out
}

/// Byte ranges covered by `#[cfg(test)]`- or `#[test]`-attributed
/// items (the attribute through the item's closing `}` or `;`).
fn cfg_test_mask(toks: &[Token], src: &str) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut mask = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].kind.eq(&TokKind::Punct(b'#')) {
            i += 1;
            continue;
        }
        // Attribute: `#[ … ]` (inner `#![…]` never marks tests).
        let Some(open) = code.get(i + 1) else { break };
        if open.kind != TokKind::Punct(b'[') {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test_attr = false;
        let mut saw_cfg = false;
        let mut saw_not = false;
        let mut first_ident: Option<&str> = None;
        while j < code.len() {
            match code[j].kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident => {
                    let t = code[j].text(src);
                    if first_ident.is_none() {
                        first_ident = Some(t);
                    }
                    if t == "cfg" {
                        saw_cfg = true;
                    }
                    if t == "not" {
                        // `#[cfg(not(test))]` marks *live* code.
                        saw_not = true;
                    }
                    if t == "test" && !saw_not && (saw_cfg || first_ident == Some("test")) {
                        is_test_attr = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then consume the item to its
        // end: the matching `}` of its first brace, or a `;` before
        // any brace opens.
        let start_byte = code[i].start;
        let mut k = j + 1;
        while code.get(k).is_some_and(|t| t.kind == TokKind::Punct(b'#'))
            && code
                .get(k + 1)
                .is_some_and(|t| t.kind == TokKind::Punct(b'['))
        {
            let mut d = 0usize;
            k += 1;
            while k < code.len() {
                match code[k].kind {
                    TokKind::Punct(b'[') => d += 1,
                    TokKind::Punct(b']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0usize;
        let mut end_byte = src.len();
        while k < code.len() {
            match code[k].kind {
                TokKind::Punct(b'{') => brace_depth += 1,
                TokKind::Punct(b'}') => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 {
                        end_byte = code[k].end;
                        break;
                    }
                }
                TokKind::Punct(b';') if brace_depth == 0 => {
                    end_byte = code[k].end;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        mask.push((start_byte, end_byte));
        i = k + 1;
    }
    mask
}

/// Whether the token stream carries the literal inner attribute
/// `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe_header(toks: &[Token], src: &str) -> bool {
    let code: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    code.windows(8).any(|w| {
        w[0].kind == TokKind::Punct(b'#')
            && w[1].kind == TokKind::Punct(b'!')
            && w[2].kind == TokKind::Punct(b'[')
            && w[3].text(src) == "forbid"
            && w[4].kind == TokKind::Punct(b'(')
            && w[5].text(src) == "unsafe_code"
            && w[6].kind == TokKind::Punct(b')')
            && w[7].kind == TokKind::Punct(b']')
    })
}

/// Names bound (or declared as struct fields / locals) with a
/// `HashMap`/`HashSet` type in this file. Heuristic: an ident directly
/// before a `:` or `=` whose right-hand side leads with (a possibly
/// `std::collections::`-qualified) `HashMap`/`HashSet`.
fn collect_map_typed_names(toks: &[Token], src: &str) -> Vec<String> {
    let code: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut names = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let word = t.text(src);
        if word != "HashMap" && word != "HashSet" {
            continue;
        }
        // Walk left over a path qualifier (`std :: collections ::`).
        let mut j = i;
        while j >= 2
            && code[j - 1].kind == TokKind::Punct(b':')
            && code[j - 2].kind == TokKind::Punct(b':')
        {
            if j >= 3 && code[j - 3].kind == TokKind::Ident {
                j -= 3;
            } else {
                j -= 2;
                break;
            }
        }
        // Now expect `name :` (type ascription) or `name = | name :  … =`.
        if j >= 2
            && (code[j - 1].kind == TokKind::Punct(b':')
                || code[j - 1].kind == TokKind::Punct(b'='))
            && code[j - 2].kind == TokKind::Ident
        {
            let name = code[j - 2].text(src);
            if !matches!(name, "use" | "as" | "pub" | "in") && !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        analyze_source("t.rs", src, FileKind::Lib, RuleSet::strict())
            .into_iter()
            .map(|d| d.rule.code().to_string())
            .collect()
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = r#"
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); panic!("fine"); }
}
"#;
        assert_eq!(run(src), ["SRV001"]);
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "// nplus:allow(SRV001): startup-only, config is compiled in\nlet x = y.unwrap();\nlet z = w.unwrap();\n";
        assert_eq!(run(src), ["SRV001"]); // only the third line fires
    }

    #[test]
    fn allow_without_reason_is_rejected_and_does_not_suppress() {
        let src = "let x = y.unwrap(); // nplus:allow(SRV001)\n";
        let mut codes = run(src);
        codes.sort();
        assert_eq!(codes, ["ALW001", "SRV001"]);
    }

    #[test]
    fn allow_unknown_rule_is_rejected() {
        let src = "// nplus:allow(XYZ999): whatever\n";
        assert_eq!(run(src), ["ALW002"]);
    }

    #[test]
    fn meta_rules_cannot_be_suppressed() {
        let src = "// nplus:allow(ALW001): trying to allow the allow\n";
        assert_eq!(run(src), ["ALW002"]);
    }

    #[test]
    fn map_iteration_detected_through_field_and_local() {
        let src = r#"
struct C { tables: HashMap<(usize, usize), T> }
impl C {
    fn bad(&self) { for k in self.tables.keys() { use_it(k); } }
}
fn local() {
    let index: std::collections::HashMap<u32, u32> = make();
    for (k, v) in &index { touch(k, v); }
}
fn fine() {
    let v: Vec<u32> = make();
    for x in &v { touch(x); }
    let b: BTreeMap<u32, u32> = make();
    for x in &b { touch(x); }
}
"#;
        assert_eq!(run(src), ["DET003", "DET003"]);
    }

    #[test]
    fn bins_may_print_and_exit() {
        let src = "fn main() { println!(\"hi\"); std::process::exit(2); }";
        let diags = analyze_source("b.rs", src, FileKind::Bin, RuleSet::strict());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
// Instant::now() thread_rng() .unwrap() panic!()
const DOC: &str = "SystemTime OsRng dbg! unsafe";
"#;
        assert_eq!(run(src), Vec::<String>::new());
    }

    #[test]
    fn wall_clock_and_entropy_fire() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }";
        let mut codes = run(src);
        codes.sort();
        assert_eq!(codes, ["DET001", "DET002"]);
    }
}
