//! The rule vocabulary: stable IDs, what each rule matches, and the
//! per-profile rule sets.
//!
//! | ID | profile | matches |
//! |---|---|---|
//! | `DET001` | all library code | `Instant::now`, any `SystemTime` use |
//! | `DET002` | all library code | `thread_rng`, `from_entropy`, `OsRng` |
//! | `DET003` | deterministic core | iteration over a `HashMap`/`HashSet`-typed binding (`.iter()`, `.keys()`, `.values()`, `.into_iter()`, `.drain()`, `for … in &map`) |
//! | `SRV001` | serving surface | `.unwrap(` / `.expect(` |
//! | `SRV002` | serving surface | `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `SRV003` | serving surface | `process::exit` outside binaries |
//! | `HYG001` | crate roots | missing `#![forbid(unsafe_code)]` header |
//! | `HYG002` | everywhere | the `unsafe` keyword outside the whitelist |
//! | `HYG003` | library code | `println!`, `print!` or `dbg!` in a library |
//! | `ALW001` | everywhere | a `nplus:allow` annotation without a reason |
//! | `ALW002` | everywhere | a `nplus:allow` naming an unknown rule ID |
//!
//! "Library code" means non-test code in `src/` outside `src/bin/`;
//! `#[cfg(test)]` items and `tests/`/`benches/`/`examples/` targets are
//! exempt from everything except the `unsafe` whitelist (`HYG002`),
//! which has no test exemption — determinism is a library contract,
//! but memory safety is a workspace-wide one.
//!
//! `ALW001`/`ALW002` police the suppression mechanism itself and are
//! deliberately **not** suppressible.

/// A stable rule identifier. The numbering is append-only: IDs are
/// written in `nplus:allow(…)` annotations across the tree, so a
/// renumbering would silently void existing suppressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock read (`Instant::now` / `SystemTime`).
    Det001,
    /// Entropy-seeded randomness (`thread_rng`/`from_entropy`/`OsRng`).
    Det002,
    /// Unordered `HashMap`/`HashSet` iteration.
    Det003,
    /// `.unwrap()` / `.expect()` on the serving surface.
    Srv001,
    /// Panicking macro on the serving surface.
    Srv002,
    /// `process::exit` in serving library code.
    Srv003,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    Hyg001,
    /// `unsafe` outside the whitelist.
    Hyg002,
    /// `println!`/`print!`/`dbg!` in library code.
    Hyg003,
    /// Malformed `nplus:allow` (missing `: reason`).
    Alw001,
    /// `nplus:allow` naming an unknown rule.
    Alw002,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 11] = [
        RuleId::Det001,
        RuleId::Det002,
        RuleId::Det003,
        RuleId::Srv001,
        RuleId::Srv002,
        RuleId::Srv003,
        RuleId::Hyg001,
        RuleId::Hyg002,
        RuleId::Hyg003,
        RuleId::Alw001,
        RuleId::Alw002,
    ];

    /// The stable textual ID (`"DET001"`, …) used in reports and
    /// `nplus:allow` annotations.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Det001 => "DET001",
            RuleId::Det002 => "DET002",
            RuleId::Det003 => "DET003",
            RuleId::Srv001 => "SRV001",
            RuleId::Srv002 => "SRV002",
            RuleId::Srv003 => "SRV003",
            RuleId::Hyg001 => "HYG001",
            RuleId::Hyg002 => "HYG002",
            RuleId::Hyg003 => "HYG003",
            RuleId::Alw001 => "ALW001",
            RuleId::Alw002 => "ALW002",
        }
    }

    /// Parses a textual ID; `None` for anything unknown.
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// One-line description of the contract behind the rule.
    pub fn contract(self) -> &'static str {
        match self {
            RuleId::Det001 => "deterministic code must not read the wall clock",
            RuleId::Det002 => "deterministic code must not draw entropy-seeded randomness",
            RuleId::Det003 => "results must not depend on HashMap/HashSet iteration order",
            RuleId::Srv001 => "the serving path must not unwrap/expect",
            RuleId::Srv002 => "the serving path must not panic",
            RuleId::Srv003 => "the serving library must not exit the process",
            RuleId::Hyg001 => "every crate root carries #![forbid(unsafe_code)]",
            RuleId::Hyg002 => "unsafe only in the whitelisted counting allocator",
            RuleId::Hyg003 => "library code must not print to stdout or dbg!",
            RuleId::Alw001 => "every nplus:allow must carry a reason",
            RuleId::Alw002 => "nplus:allow must name a real rule",
        }
    }

    /// Whether a `nplus:allow(THIS)` annotation may suppress it. The
    /// meta rules policing the annotations themselves cannot be
    /// annotated away.
    pub fn suppressible(self) -> bool {
        !matches!(self, RuleId::Alw001 | RuleId::Alw002)
    }
}

/// The set of rules active for one file, derived from the crate's
/// profile and the file's kind by [`workspace`](crate::workspace) (or
/// assembled directly in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// `DET001`/`DET002`: wall-clock and entropy randomness.
    pub wall_clock_and_entropy: bool,
    /// `DET003`: unordered map iteration (deterministic core only).
    pub map_iteration: bool,
    /// `SRV001`–`SRV003`: the panic-free serving surface.
    pub serving_surface: bool,
    /// `HYG001`: this file is a crate root and must carry the header.
    pub crate_root_header: bool,
    /// `HYG002`: `unsafe` is forbidden in this file.
    pub no_unsafe: bool,
    /// `HYG003`: stdout/dbg printing is forbidden in this file.
    pub no_print: bool,
}

impl RuleSet {
    /// Everything on — the strictest profile, used by fixtures.
    pub fn strict() -> RuleSet {
        RuleSet {
            wall_clock_and_entropy: true,
            map_iteration: true,
            serving_surface: true,
            crate_root_header: false,
            no_unsafe: true,
            no_print: true,
        }
    }
}
