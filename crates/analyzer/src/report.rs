//! Diagnostics and the two output formats.
//!
//! Human output is one `file:line: RULE contract — detail` line per
//! finding; `--json` emits a single document with a stable member
//! order, written by a ~40-line escaper in the house style of the
//! server's dependency-free `json` module (output only — the analyzer
//! never parses JSON). Findings are always sorted by
//! `(file, line, rule)` so reports diff cleanly between runs.

use crate::rules::RuleId;
use std::fmt::Write as _;

/// One finding: a rule, a place, and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// What exactly matched.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic (used by the engine and by tests).
    pub fn new(rule: RuleId, file: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message,
        }
    }

    /// The canonical one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {} — {}",
            self.file,
            self.line,
            self.rule.code(),
            self.rule.contract(),
            self.message
        )
    }
}

/// Sorts findings into report order: file, then line, then rule.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders the human report: one line per finding plus a summary line.
pub fn render_human(diags: &[Diagnostic], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}", d.render());
    }
    let _ = writeln!(
        out,
        "analyze: {} finding(s), {} suppressed, {} file(s) scanned",
        diags.len(),
        suppressed,
        files_scanned
    );
    out
}

/// Renders the JSON report with a fixed member order:
/// `{"version":…,"files_scanned":…,"suppressed":…,"findings":[…]}`.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":1,\"files_scanned\":{files_scanned},\"suppressed\":{suppressed},\"findings\":["
    );
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        write_json_str(&mut out, d.rule.code());
        out.push_str(",\"file\":");
        write_json_str(&mut out, &d.file);
        let _ = write!(out, ",\"line\":{}", d.line);
        out.push_str(",\"contract\":");
        write_json_str(&mut out, d.rule.contract());
        out.push_str(",\"message\":");
        write_json_str(&mut out, &d.message);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_sorted_and_stable() {
        let mut diags = vec![
            Diagnostic::new(RuleId::Srv001, "b.rs", 9, "x".to_string()),
            Diagnostic::new(RuleId::Det001, "a.rs", 12, "y".to_string()),
            Diagnostic::new(RuleId::Det001, "a.rs", 3, "z".to_string()),
        ];
        sort_diagnostics(&mut diags);
        let files: Vec<_> = diags.iter().map(|d| (d.file.as_str(), d.line)).collect();
        assert_eq!(files, [("a.rs", 3), ("a.rs", 12), ("b.rs", 9)]);
        let human = render_human(&diags, 3, 1);
        assert!(human.contains("a.rs:3: DET001"));
        assert!(human.ends_with("3 finding(s), 1 suppressed, 3 file(s) scanned\n"));
    }

    #[test]
    fn json_member_order_is_fixed_and_escaped() {
        let diags = vec![Diagnostic::new(
            RuleId::Hyg003,
            "crates/x/src/lib.rs",
            4,
            "`println!` with \"quotes\"\tand tabs".to_string(),
        )];
        let json = render_json(&diags, 10, 0);
        assert!(json.starts_with("{\"version\":1,\"files_scanned\":10,\"suppressed\":0,"));
        assert!(json.contains("\"rule\":\"HYG003\""));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\t"));
        // No raw control bytes survive.
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
    }
}
