//! Golden-diagnostic tests over the fixture corpus.
//!
//! Every `tests/fixtures/<name>.rs` carries a first-line header
//! `//~ kind=<lib|libroot|bin|test> profile=<detcore|serving|hygiene>`
//! choosing how the engine sees it, and a `<name>.golden` file holding
//! the exact rendered findings. The corpus has a positive *and* a
//! negative case for every rule, so both over- and under-reporting
//! regress loudly. The workspace walker skips directories named
//! `fixtures`, so the deliberate violations here never pollute the
//! real `analyze` run.

use nplus_analyzer::workspace::{rules_for, Profile};
use nplus_analyzer::{analyze_source, FileKind};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses the `//~ kind=… profile=…` header of a fixture.
fn parse_header(src: &str, name: &str) -> (FileKind, Profile) {
    let header = src.lines().next().unwrap_or_default();
    let field = |key: &str| {
        header
            .split_whitespace()
            .find_map(|w| w.strip_prefix(key))
            .unwrap_or_else(|| panic!("{name}: header missing {key}"))
            .to_string()
    };
    let kind = match field("kind=").as_str() {
        "lib" => FileKind::Lib,
        "libroot" => FileKind::LibRoot,
        "bin" => FileKind::Bin,
        "test" => FileKind::Test,
        other => panic!("{name}: unknown kind {other:?}"),
    };
    let profile = match field("profile=").as_str() {
        "detcore" => Profile::DetCore,
        "serving" => Profile::Serving,
        "hygiene" => Profile::Hygiene,
        other => panic!("{name}: unknown profile {other:?}"),
    };
    (kind, profile)
}

fn rendered_findings(path: &Path) -> String {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let src = std::fs::read_to_string(path).expect("fixture readable");
    let (kind, profile) = parse_header(&src, &name);
    let diags = analyze_source(&name, &src, kind, rules_for(profile, kind));
    let mut out = String::new();
    for d in &diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

#[test]
fn every_fixture_matches_its_golden() {
    let dir = fixtures_dir();
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 6,
        "corpus shrank to {} fixtures",
        fixtures.len()
    );
    for path in fixtures {
        let actual = rendered_findings(&path);
        let golden_path = path.with_extension("golden");
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden {}; actual findings were:\n{actual}",
                golden_path.display()
            )
        });
        assert_eq!(
            actual,
            golden,
            "{} diverged from its golden; actual findings were:\n{actual}",
            path.display()
        );
    }
}

/// The malformed-allow fixture specifically: a missing reason is ALW001
/// *and* leaves the target finding unsuppressed — suppression without
/// justification must never work.
#[test]
fn missing_allow_reason_is_rejected_and_does_not_suppress() {
    let path = fixtures_dir().join("allow_malformed.rs");
    let out = rendered_findings(&path);
    assert!(out.contains("ALW001"), "missing reason not flagged:\n{out}");
    assert!(
        out.contains("DET001"),
        "malformed allow still suppressed its target:\n{out}"
    );
    assert!(out.contains("ALW002"), "unknown rule not flagged:\n{out}");
}
