//! The lexer's only hard contract: it never panics, whatever bytes it
//! is fed. The analyzer runs over every file in the tree — including
//! ones mid-edit, truncated, or not Rust at all — and a lexer panic
//! would turn a hygiene check into a build breaker.

use nplus_analyzer::lexer::lex;
use proptest::prelude::*;

/// Characters that stress the lexer's tricky paths: string/char
/// delimiters, escapes, raw-string hashes, comment openers/closers and
/// multi-byte UTF-8.
const SPICE: &[char] = &[
    '"', '\'', '\\', '#', 'r', 'b', '/', '*', '!', '(', ')', '\n', 'é', '∀', '𝕏', '\u{0}',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes, lossily decoded: the lexer terminates and every
    /// token's span is in-bounds and non-inverted.
    #[test]
    fn arbitrary_bytes_lex_without_panicking(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        for t in lex(&src) {
            prop_assert!(t.start <= t.end && t.end <= src.len());
        }
    }

    /// Delimiter-heavy soup: unterminated strings, half-open raw
    /// strings, nested comment openers — the paths a uniform byte
    /// distribution almost never reaches.
    #[test]
    fn delimiter_soup_lexes_without_panicking(
        picks in proptest::collection::vec((0usize..SPICE.len(), any::<bool>()), 0..128),
    ) {
        let mut src = String::new();
        for (i, pad) in picks {
            src.push(SPICE[i]);
            if pad {
                src.push('x');
            }
        }
        for t in lex(&src) {
            prop_assert!(t.start <= t.end && t.end <= src.len());
            // Spans must also land on char boundaries, or Token::text
            // would silently return "" for real tokens.
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        }
    }
}
