//~ kind=lib profile=detcore
// ALW001/ALW002 positives: malformed suppressions are findings
// themselves, and the finding they failed to suppress still fires.

fn missing_reason_marker() {
    // nplus:allow(DET001)
    let _ = std::time::Instant::now();
}

fn blank_reason() {
    // nplus:allow(DET001):
    let _ = std::time::Instant::now();
}

fn unknown_rule() {
    // nplus:allow(DET999): no such rule exists.
    let _ = 0;
}

fn alw_rules_cannot_be_allowed() {
    // nplus:allow(ALW001): meta-suppression is rejected.
    let _ = 0;
}

fn well_formed_is_clean() {
    // nplus:allow(DET002): fixture demonstrating the happy path.
    let mut rng = rand::thread_rng();
}
