//~ kind=lib profile=detcore
// DET002 positives and negatives: ambient-entropy RNG construction.

fn bad_thread_rng() {
    let mut rng = rand::thread_rng(); //~ DET002
}

fn bad_from_entropy() {
    let mut rng = StdRng::from_entropy(); //~ DET002
}

fn bad_os_rng() {
    let mut rng = OsRng; //~ DET002
}

fn seeded_is_fine(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
}

#[cfg(test)]
mod tests {
    fn entropy_is_fine_in_tests() {
        let mut rng = rand::thread_rng();
    }
}
