//~ kind=libroot profile=hygiene
// All-negative fixture: a crate root that satisfies every hygiene rule.
#![forbid(unsafe_code)]

fn quiet_and_safe() -> u32 {
    7
}
