//~ kind=lib profile=serving
// SRV001/SRV002/SRV003 positives and negatives: the panic-free serving
// surface.

fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() //~ SRV001
}

fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present") //~ SRV001
}

fn bad_panic() {
    panic!("boom"); //~ SRV002
}

fn bad_unreachable() {
    unreachable!(); //~ SRV002
}

fn bad_todo() {
    todo!() //~ SRV002
}

fn bad_exit() {
    std::process::exit(1); //~ SRV003
}

fn typed_errors_are_fine(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "absent".to_string())
}

#[cfg(test)]
mod tests {
    fn panics_are_fine_in_tests(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
