//~ kind=lib profile=detcore
// DET003 positives and negatives: iterating unordered maps in the
// deterministic core.

use std::collections::{BTreeMap, HashMap, HashSet};

fn bad_method_iteration(table: HashMap<u32, f64>) -> f64 {
    table.values().sum() //~ DET003
}

fn bad_for_loop() {
    let set: HashSet<u32> = HashSet::new();
    for x in &set {} //~ DET003
}

fn bad_keys_walk() {
    let table: HashMap<u32, f64> = HashMap::new();
    let ks: Vec<u32> = table.keys().copied().collect(); //~ DET003
}

fn lookups_are_fine(table: HashMap<u32, f64>) -> Option<f64> {
    table.get(&7).copied()
}

// Name tracking is file-global (token heuristic, no scopes): an
// ordered map must not reuse a name that was HashMap-typed elsewhere
// in the file, or it inherits the taint. Hence `ordered`, not `table`.
fn ordered_maps_are_fine(ordered: BTreeMap<u32, f64>) -> f64 {
    ordered.values().sum()
}

fn allowed_when_order_is_erased(table: HashMap<u32, f64>) -> Vec<u32> {
    // nplus:allow(DET003): order is erased by the sort below.
    let mut ks: Vec<u32> = table.keys().copied().collect();
    ks.sort_unstable();
    ks
}
