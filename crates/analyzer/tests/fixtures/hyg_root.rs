//~ kind=libroot profile=hygiene
// HYG001/HYG002/HYG003 positives: a crate root missing the forbid
// header, carrying unsafe and printing from library code.
//~ HYG001 (no `#![forbid(unsafe_code)]` anywhere in this file)

fn bad_unsafe(p: *const u32) -> u32 {
    unsafe { *p } //~ HYG002
}

fn bad_println() {
    println!("debug debris"); //~ HYG003
}

fn bad_dbg(x: u32) -> u32 {
    dbg!(x) //~ HYG003
}

fn eprintln_is_fine() {
    eprintln!("operational log line");
}
