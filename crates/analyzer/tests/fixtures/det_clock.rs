//~ kind=lib profile=detcore
// DET001 positives and negatives: wall-clock reads in deterministic
// core code. This file is a fixture — it is never compiled.

fn bad_instant() -> std::time::Instant {
    std::time::Instant::now() //~ DET001
}

fn bad_system_time() -> u64 {
    let t = std::time::SystemTime::now(); //~ DET001
    0
}

fn allowed_with_reason() {
    // nplus:allow(DET001): fixture demonstrating a justified clock read.
    let _ = std::time::Instant::now();
}

fn negative_mentions_in_comment_and_string() {
    // Instant::now() in a comment is fine.
    let _ = "Instant::now() in a string is fine";
}

#[cfg(test)]
mod tests {
    fn clocks_are_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
