//! The gate itself, as a test: the workspace this analyzer ships in
//! must analyze clean. `cargo test` therefore fails the moment anyone
//! introduces an unsuppressed violation, even before CI runs the
//! `analyze` binary.

use nplus_analyzer::workspace::analyze_workspace;
use std::path::Path;

#[test]
fn the_workspace_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = analyze_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 100,
        "walk found only {} files — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "the workspace must analyze clean; findings:\n{}",
        rendered.join("\n")
    );
}
