//! Protocol-level invariants of n+ (DESIGN.md §6), checked across many
//! random topologies.

use nplus::policy::{GreedyJoin, NPlus, Oracle};
use nplus::sim::{sweep, sweep_parallel, Protocol, Scenario, SimConfig, SweepSpec};
use nplus_channel::environment::BUILTIN_ENVIRONMENT_NAMES;
use nplus_channel::impairments::{HardwareProfile, IDEAL_HARDWARE};
use nplus_channel::placement::Testbed;
use nplus_testkit::generator::ScenarioGenerator;
use nplus_testkit::scenario::build_scenario;
use proptest::{proptest, ProptestConfig};

fn run(
    scenario: &Scenario,
    protocol: Protocol,
    seed: u64,
    hardware: HardwareProfile,
    rounds: usize,
) -> nplus::sim::RunResult {
    let built = build_scenario(scenario.clone(), seed);
    let cfg = SimConfig {
        rounds,
        hardware,
        ..SimConfig::default()
    };
    // Decorrelate the simulation stream from the placement stream (which
    // build_scenario seeds with `seed` itself).
    built.run_with(protocol, &cfg, seed ^ 0x5EED)
}

/// n+ must never use more degrees of freedom than the largest antenna
/// count among transmitters (Claim 3.2 applied network-wide).
#[test]
fn dof_never_exceeds_max_antennas() {
    let scenario = Scenario::three_pairs();
    for seed in 0..8 {
        let r = run(
            &scenario,
            Protocol::NPlus,
            seed,
            HardwareProfile::default(),
            10,
        );
        assert!(
            r.mean_dof <= 3.0 + 1e-9,
            "seed {seed}: mean DoF {} exceeds the 3-antenna budget",
            r.mean_dof
        );
    }
}

/// With ideal hardware (perfect channel knowledge), the single-antenna
/// pair must lose essentially nothing to n+'s concurrency: nulls are
/// numerically exact.
#[test]
fn ideal_hardware_protects_first_winner_perfectly() {
    let scenario = Scenario::three_pairs();
    let mut flow0_nplus = 0.0;
    let mut flow0_dot11n = 0.0;
    // A mean over few placements sits close to the 0.75 bound; a dozen
    // keeps the average clear of it across RNG streams.
    for seed in 0..12 {
        flow0_nplus += run(&scenario, Protocol::NPlus, seed, IDEAL_HARDWARE, 14).per_flow_mbps[0];
        flow0_dot11n += run(&scenario, Protocol::Dot11n, seed, IDEAL_HARDWARE, 14).per_flow_mbps[0];
    }
    // The single-antenna flow's throughput under n+ must stay within 25%
    // of its 802.11n share (it keeps its contention share; only round
    // length bookkeeping differs).
    assert!(
        flow0_nplus > 0.75 * flow0_dot11n,
        "single-antenna pair starved: {flow0_nplus:.2} vs {flow0_dot11n:.2}"
    );
}

/// n+'s win comes from concurrency: its mean DoF must exceed 802.11n's
/// on the same topology, and total throughput must follow.
#[test]
fn concurrency_is_the_mechanism() {
    let scenario = Scenario::three_pairs();
    let mut dof_gain = 0.0;
    let mut tput_gain = 0.0;
    let n = 6;
    for seed in 0..n {
        let np = run(
            &scenario,
            Protocol::NPlus,
            seed,
            HardwareProfile::default(),
            12,
        );
        let dn = run(
            &scenario,
            Protocol::Dot11n,
            seed,
            HardwareProfile::default(),
            12,
        );
        dof_gain += np.mean_dof / dn.mean_dof.max(1e-9) / n as f64;
        tput_gain += np.total_mbps / dn.total_mbps.max(1e-9) / n as f64;
    }
    assert!(dof_gain > 1.15, "DoF gain only {dof_gain:.2}");
    assert!(tput_gain > 1.25, "throughput gain only {tput_gain:.2}");
}

/// Multi-antenna pairs gain more than single-antenna pairs (the paper's
/// headline per-class result: 1.5x for 2x2, 3.5x for 3x3).
#[test]
fn gains_grow_with_antenna_count() {
    let scenario = Scenario::three_pairs();
    let mut gains = [0.0f64; 3];
    let n = 8;
    for seed in 0..n {
        let np = run(
            &scenario,
            Protocol::NPlus,
            seed,
            HardwareProfile::default(),
            12,
        );
        let dn = run(
            &scenario,
            Protocol::Dot11n,
            seed,
            HardwareProfile::default(),
            12,
        );
        for f in 0..3 {
            gains[f] += np.per_flow_mbps[f] / dn.per_flow_mbps[f].max(1e-9) / n as f64;
        }
    }
    assert!(
        gains[2] > gains[0],
        "3-antenna gain {:.2} not above 1-antenna gain {:.2}",
        gains[2],
        gains[0]
    );
    assert!(
        gains[1] > 0.9,
        "2-antenna pair should not lose from n+: gain {:.2}",
        gains[1]
    );
}

/// Disabling join power control must not *increase* the single-antenna
/// pair's throughput — power control exists to protect it. The ablation
/// lives at the policy layer now: `GreedyJoin` is n+ with the §4
/// decision bypassed (bit-for-bit the old `power_control = false`, as
/// the `policy_regression` suite pins).
#[test]
fn power_control_protects_ongoing_receivers() {
    let scenario = Scenario::three_pairs();
    let mut with_pc = 0.0;
    let mut without_pc = 0.0;
    for seed in 0..6u64 {
        let built = build_scenario(scenario.clone(), seed);
        let cfg = SimConfig {
            rounds: 12,
            ..SimConfig::default()
        };
        with_pc += built.run_policy(&NPlus, &cfg, seed ^ 0x55).per_flow_mbps[0];
        without_pc += built
            .run_policy(&GreedyJoin, &cfg, seed ^ 0x55)
            .per_flow_mbps[0];
    }
    assert!(
        with_pc >= 0.9 * without_pc,
        "power control hurt the protected flow: {with_pc:.2} vs {without_pc:.2}"
    );
}

/// The omniscient scheduler is an upper bound: with perfect channel
/// knowledge, exhaustive primary selection and zero contention
/// overhead, `Oracle`'s mean total goodput must be at least n+'s on
/// every generated scenario family (deterministic seeds, so this is a
/// pinned comparison, not a statistical one).
#[test]
fn oracle_upper_bounds_nplus_on_generated_scenarios() {
    let mut families: Vec<(String, Scenario)> = vec![
        ("three_pairs".into(), Scenario::three_pairs()),
        ("ap_downlink".into(), Scenario::ap_downlink()),
    ];
    for gen_seed in [7u64, 21, 42] {
        families.push((
            format!("pairs3:{gen_seed}"),
            ScenarioGenerator::new(gen_seed).n_pairs(3),
        ));
        families.push((
            format!("hidden2:{gen_seed}"),
            ScenarioGenerator::new(gen_seed).hidden_terminal(2),
        ));
        families.push((
            format!("asym2:{gen_seed}"),
            ScenarioGenerator::new(gen_seed).asymmetric_antenna(2),
        ));
    }
    for (label, scenario) in families {
        let stats = SweepSpec::new(scenario)
            .rounds(6)
            .seed_count(4)
            .policy(NPlus)
            .policy(Oracle)
            .run();
        let (np, oracle) = (&stats[0], &stats[1]);
        assert_eq!(np.policy, "nplus");
        assert_eq!(oracle.policy, "oracle");
        assert!(
            oracle.mean_total_mbps >= np.mean_total_mbps,
            "{label}: oracle {:.3} Mb/s below n+ {:.3} Mb/s",
            oracle.mean_total_mbps,
            np.mean_total_mbps
        );
    }
}

/// The channel cache is purely an evaluation-order optimization: for any
/// fixed seed, `simulate` must return bit-for-bit identical `RunResult`s
/// with caching enabled and disabled, for every protocol. (Only pure
/// true channels are cached; believed channels draw hardware error from
/// the RNG in the same order either way.)
#[test]
fn caching_preserves_results_bit_for_bit() {
    for scenario in [Scenario::three_pairs(), Scenario::ap_downlink()] {
        for seed in [3u64, 17] {
            let built = build_scenario(scenario.clone(), seed);
            for protocol in [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming] {
                let cached_cfg = SimConfig {
                    rounds: 8,
                    ..SimConfig::default()
                };
                let uncached_cfg = SimConfig {
                    cache_channels: false,
                    ..cached_cfg.clone()
                };
                let cached = built.run_with(protocol, &cached_cfg, seed ^ 0x5EED);
                let uncached = built.run_with(protocol, &uncached_cfg, seed ^ 0x5EED);
                assert_eq!(
                    cached.per_flow_mbps, uncached.per_flow_mbps,
                    "{protocol:?} seed {seed}: caching changed per-flow goodput"
                );
                assert_eq!(cached.total_mbps, uncached.total_mbps);
                assert_eq!(cached.mean_dof, uncached.mean_dof);
            }
        }
    }
}

/// Determinism: identical seeds produce identical results.
#[test]
fn simulation_is_deterministic() {
    let scenario = Scenario::three_pairs();
    let a = run(
        &scenario,
        Protocol::NPlus,
        33,
        HardwareProfile::default(),
        8,
    );
    let b = run(
        &scenario,
        Protocol::NPlus,
        33,
        HardwareProfile::default(),
        8,
    );
    assert_eq!(a.per_flow_mbps, b.per_flow_mbps);
    assert_eq!(a.total_mbps, b.total_mbps);
}

/// Full Monte-Carlo reproduction of the Fig. 12 headline: total n+
/// throughput beats 802.11n by a wide margin over many placements, while
/// the single-antenna flow keeps most of its share.
// Intentionally long-running (30 placements × 2 protocols × 25 rounds —
// several× the rest of the suite combined): run with `cargo test -- --ignored`.
#[test]
#[ignore = "long-running Monte-Carlo sweep; run explicitly with --ignored"]
fn monte_carlo_throughput_headline() {
    let scenario = Scenario::three_pairs();
    let cfg = SimConfig {
        rounds: 25,
        ..SimConfig::default()
    };
    let (mut np_total, mut dn_total, mut np_flow0, mut dn_flow0) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..30 {
        let built = build_scenario(scenario.clone(), seed);
        let np = built.run_with(Protocol::NPlus, &cfg, seed ^ 0xC0FFEE);
        let dn = built.run_with(Protocol::Dot11n, &cfg, seed ^ 0xC0FFEE);
        np_total += np.total_mbps;
        dn_total += dn.total_mbps;
        np_flow0 += np.per_flow_mbps[0];
        dn_flow0 += dn.per_flow_mbps[0];
    }
    let gain = np_total / dn_total.max(1e-9);
    assert!(gain > 1.25, "total throughput gain only {gain:.2}x");
    assert!(
        np_flow0 > 0.8 * dn_flow0,
        "single-antenna flow lost too much: {np_flow0:.1} vs {dn_flow0:.1}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The parallel sweep engine's determinism contract (DESIGN.md §4):
    /// for any generated scenario, `sweep_parallel` at 1, 2 and 4
    /// threads produces statistics **bit-for-bit identical** to the
    /// serial `sweep` — same seed-derived RNG streams per job, results
    /// merged in seed order, no tolerance anywhere.
    #[test]
    fn sweep_parallel_is_bitwise_deterministic(gen_seed in 0u64..1000, family in 0u8..3) {
        let mut generator = ScenarioGenerator::new(gen_seed);
        // Small instances of three families — the proptest runs on every
        // `cargo test`, so keep each case to a few simulated rounds.
        let scenario = match family {
            0 => generator.n_pairs(2),
            1 => generator.hidden_terminal(2),
            _ => generator.asymmetric_antenna(2),
        };
        let testbed = Testbed::fitting(scenario.antennas.len());
        let cfg = SimConfig { rounds: 2, ..SimConfig::default() };
        let protocols = [Protocol::NPlus, Protocol::Dot11n];
        let seeds: Vec<u64> = (gen_seed..gen_seed + 2).collect();
        let serial = sweep(&testbed, &scenario, &cfg, &protocols, &seeds);
        for threads in [1usize, 2, 4] {
            let par = sweep_parallel(&testbed, &scenario, &cfg, &protocols, &seeds, threads);
            proptest::prop_assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                proptest::prop_assert_eq!(&s.policy, &p.policy);
                proptest::prop_assert_eq!(s.n_runs, p.n_runs);
                proptest::prop_assert_eq!(s.mean_total_mbps, p.mean_total_mbps, "threads {}", threads);
                proptest::prop_assert_eq!(s.ci95_total_mbps, p.ci95_total_mbps, "threads {}", threads);
                proptest::prop_assert_eq!(&s.mean_per_flow_mbps, &p.mean_per_flow_mbps, "threads {}", threads);
                proptest::prop_assert_eq!(s.mean_dof, p.mean_dof, "threads {}", threads);
                // NaN-safe bitwise compare (fairness is NaN when no run defined it).
                proptest::prop_assert_eq!(s.mean_fairness.to_bits(), p.mean_fairness.to_bits(), "threads {}", threads);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The engine's two determinism contracts hold in **every**
    /// registered propagation environment, not just the paper's world:
    /// for any generated scenario, (a) the channel cache is invisible —
    /// sweep statistics are bit-for-bit identical with `cache_channels`
    /// on and off — and (b) `sweep_parallel` at 2 threads equals the
    /// serial sweep exactly. Worlds whose believed-channel draws differ
    /// (degraded hardware) or whose fading is deeper (rich scatter)
    /// must not perturb either contract.
    #[test]
    fn environments_preserve_cache_and_thread_determinism(gen_seed in 0u64..1000, family in 0u8..3) {
        let mut generator = ScenarioGenerator::new(gen_seed);
        let scenario = match family {
            0 => generator.n_pairs(2),
            1 => generator.hidden_terminal(2),
            _ => generator.asymmetric_antenna(2),
        };
        for name in BUILTIN_ENVIRONMENT_NAMES {
            let run = |cache: bool, threads: usize| {
                let cfg = SimConfig { rounds: 2, cache_channels: cache, ..SimConfig::default() };
                SweepSpec::new(scenario.clone())
                    .config(cfg)
                    .environment_named(name)
                    .expect("builtin environment")
                    .seeds(gen_seed..gen_seed + 2)
                    .policy(NPlus)
                    .threads(threads)
                    .run()
            };
            let base = run(true, 1);
            for (context, other) in [("cache off", run(false, 1)), ("2 threads", run(true, 2))] {
                for (a, b) in base.iter().zip(&other) {
                    proptest::prop_assert_eq!(a.mean_total_mbps, b.mean_total_mbps, "{} ({})", name, context);
                    proptest::prop_assert_eq!(&a.mean_per_flow_mbps, &b.mean_per_flow_mbps, "{} ({})", name, context);
                    proptest::prop_assert_eq!(a.mean_dof, b.mean_dof, "{} ({})", name, context);
                    proptest::prop_assert_eq!(a.ci95_total_mbps, b.ci95_total_mbps, "{} ({})", name, context);
                    proptest::prop_assert_eq!(a.mean_fairness.to_bits(), b.mean_fairness.to_bits(), "{} ({})", name, context);
                }
            }
        }
    }
}

/// Invariant 16 holds in every shipped world, and the oracle bound
/// with it: n+'s mean total goodput beats 802.11n's clearly — and
/// `Oracle`'s upper-bounds n+'s — in the paper's indoor environment
/// *and* in the outdoor, rich-scatter and degraded-hardware worlds.
/// The concurrency win is a property of the protocol, not of the one
/// map the paper measured on. (Deterministic seeds; the ~1.45–1.5×
/// observed ratio leaves a wide margin over the 1.1 asserted here.)
#[test]
fn nplus_beats_dot11n_in_every_environment() {
    for name in BUILTIN_ENVIRONMENT_NAMES {
        let stats = SweepSpec::new(Scenario::three_pairs())
            .rounds(12)
            .seed_count(8)
            .protocols(&[Protocol::Dot11n, Protocol::NPlus])
            .policy(Oracle)
            .environment_named(name)
            .expect("builtin environment")
            .run();
        let (dn, np, oracle) = (&stats[0], &stats[1], &stats[2]);
        assert!(
            np.mean_total_mbps > 1.1 * dn.mean_total_mbps,
            "{name}: n+ {:.2} Mb/s not clearly above 802.11n {:.2} Mb/s",
            np.mean_total_mbps,
            dn.mean_total_mbps
        );
        assert!(
            oracle.mean_total_mbps >= np.mean_total_mbps,
            "{name}: oracle {:.2} Mb/s below n+ {:.2} Mb/s",
            oracle.mean_total_mbps,
            np.mean_total_mbps
        );
    }
}

/// The AP scenario orders protocols as the paper does:
/// n+ > beamforming > 802.11n on average.
#[test]
fn ap_scenario_protocol_ordering() {
    let scenario = Scenario::ap_downlink();
    let (mut np, mut bf, mut dn) = (0.0, 0.0, 0.0);
    // The beamforming-vs-802.11n gap is the smallest margin in this
    // ordering (~8% of the mean asymptotically — the per-ACK handshake
    // accounting charges the multi-client AP honestly, which thinned it);
    // 32 placements keep the average on the right side across RNG
    // streams (16 was inside the Monte-Carlo noise). The cached engine
    // covers the extra placements with runtime to spare.
    for seed in 0..32 {
        np += run(
            &scenario,
            Protocol::NPlus,
            seed,
            HardwareProfile::default(),
            12,
        )
        .total_mbps;
        bf += run(
            &scenario,
            Protocol::Beamforming,
            seed,
            HardwareProfile::default(),
            12,
        )
        .total_mbps;
        dn += run(
            &scenario,
            Protocol::Dot11n,
            seed,
            HardwareProfile::default(),
            12,
        )
        .total_mbps;
    }
    assert!(np > bf, "n+ {np:.1} not above beamforming {bf:.1}");
    assert!(bf > dn, "beamforming {bf:.1} not above 802.11n {dn:.1}");
}
