//! Cross-crate PHY integration: coded transmission through fading
//! channels with noise, exercising the full 802.11 chain
//! (scramble → convolve → puncture → interleave → modulate → OFDM →
//! channel → estimate → equalize → demap → Viterbi → descramble).

use nplus_channel::fading::{DelayProfile, FadingChannel};
use nplus_channel::noise::add_noise;
use nplus_linalg::Complex64;
use nplus_phy::chanest::estimate_from_ltf;
use nplus_phy::ofdm::{receive_payload, transmit_payload};
use nplus_phy::params::OfdmConfig;
use nplus_phy::preamble::ltf_time;
use nplus_phy::rates::RATE_TABLE;
use nplus_testkit::fixtures::random_payload;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sends [LTF | payload] through a multipath channel and decodes using
/// the channel estimated from the on-air LTF.
fn run_link(
    payload: &[u8],
    rate_idx: usize,
    snr_db: f64,
    profile: &DelayProfile,
    seed: u64,
) -> Vec<u8> {
    let cfg = OfdmConfig::usrp2();
    let mcs = RATE_TABLE[rate_idx];
    let mut rng = StdRng::seed_from_u64(seed);
    let chan = FadingChannel::sample(profile, &mut rng);
    let amp = 10f64.powf(snr_db / 20.0);

    // Transmit: LTF then payload symbols.
    let mut wave = ltf_time(&cfg);
    wave.extend(transmit_payload(payload, mcs, &cfg));
    let mut rx: Vec<Complex64> = chan
        .convolve(&wave)
        .into_iter()
        .map(|z| z.scale(amp))
        .collect();
    add_noise(&mut rx, 1.0, &mut rng);

    // Receive: estimate from the LTF, then decode the body.
    let est = estimate_from_ltf(&rx[..ltf_time(&cfg).len()], &cfg);
    let body = &rx[ltf_time(&cfg).len()..];
    let n_body = transmit_payload(payload, mcs, &cfg).len();
    receive_payload(&body[..n_body], &est.h, mcs, payload.len(), &cfg)
}

#[test]
fn clean_high_snr_delivers_every_rate() {
    let mut rng = StdRng::seed_from_u64(10);
    let payload = random_payload(200, &mut rng);
    for (idx, _) in RATE_TABLE.iter().enumerate() {
        let rx = run_link(&payload, idx, 35.0, &DelayProfile::los(), 42 + idx as u64);
        assert_eq!(rx, payload, "rate index {idx} failed at 35 dB");
    }
}

#[test]
fn robust_rate_survives_moderate_snr() {
    let mut rng = StdRng::seed_from_u64(11);
    let payload = random_payload(150, &mut rng);
    // BPSK 1/2 at 10 dB through NLOS multipath must still decode.
    let rx = run_link(&payload, 0, 10.0, &DelayProfile::nlos(), 7);
    assert_eq!(rx, payload);
}

#[test]
fn fast_rate_fails_at_low_snr_but_robust_rate_does_not() {
    let mut rng = StdRng::seed_from_u64(12);
    let payload = random_payload(150, &mut rng);
    // 64-QAM 3/4 at 8 dB should be hopeless…
    let rx_fast = run_link(&payload, 7, 8.0, &DelayProfile::los(), 3);
    assert_ne!(rx_fast, payload, "64-QAM 3/4 should not survive 8 dB");
    // …while BPSK 1/2 sails through the same channel.
    let rx_slow = run_link(&payload, 0, 8.0, &DelayProfile::los(), 3);
    assert_eq!(rx_slow, payload);
}

#[test]
fn multipath_depth_is_absorbed_by_cyclic_prefix() {
    let mut rng = StdRng::seed_from_u64(13);
    let payload = random_payload(120, &mut rng);
    // The NLOS profile has 8 taps — well inside the 16-sample CP. QPSK
    // 3/4 at 22 dB must decode despite the frequency selectivity.
    let rx = run_link(&payload, 3, 22.0, &DelayProfile::nlos(), 9);
    assert_eq!(rx, payload);
}

#[test]
fn different_payload_sizes_round_trip() {
    let mut rng = StdRng::seed_from_u64(14);
    for n in [1usize, 13, 100, 700, 1500] {
        let payload = random_payload(n, &mut rng);
        let rx = run_link(&payload, 2, 30.0, &DelayProfile::los(), n as u64);
        assert_eq!(rx, payload, "payload size {n}");
    }
}
