//! The `RoundObserver` contract: a `RunResult` is reconstructible from
//! the event stream alone, bit-for-bit.
//!
//! The engine's own accounting is an observer (`GoodputAccumulator`),
//! so everything it folds into the result must be visible to any other
//! observer through the same events. This suite re-derives the
//! per-flow goodput, total goodput and mean DoF from recorded
//! `RoundRecord`s — using the documented accumulation arithmetic — and
//! asserts **exact** equality with the returned `RunResult`, for every
//! built-in policy over generated scenarios.

use nplus::observer::{ContentionRecord, JoinRecord, RoundObserver, RoundRecord, RunMeta};
use nplus::policy::{policy_from_name, BUILTIN_POLICY_NAMES};
use nplus::sim::{RunResult, SimConfig, SimEngine};
use nplus_testkit::generator::ScenarioGenerator;
use nplus_testkit::scenario::build_scenario;
use proptest::{proptest, ProptestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Records the full event stream, owning copies of the borrowed slices.
#[derive(Default)]
struct Recorder {
    n_flows: usize,
    bandwidth_hz: f64,
    rounds_declared: usize,
    contentions: Vec<ContentionRecord>,
    joins: Vec<JoinRecord>,
    /// Per round: (body_symbols, duration_samples, flow_bits, active_symbols).
    rounds: Vec<(usize, u64, Vec<f64>, Vec<usize>)>,
}

impl RoundObserver for Recorder {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.n_flows = meta.n_flows;
        self.bandwidth_hz = meta.bandwidth_hz;
        self.rounds_declared = meta.rounds;
    }

    fn on_contention(&mut self, ev: &ContentionRecord) {
        self.contentions.push(ev.clone());
    }

    fn on_join(&mut self, ev: &JoinRecord) {
        self.joins.push(ev.clone());
    }

    fn on_round_end(&mut self, ev: &RoundRecord) {
        self.rounds.push((
            ev.body_symbols,
            ev.duration_samples,
            ev.flow_bits.to_vec(),
            ev.streams.iter().map(|s| s.active_symbols).collect(),
        ));
    }
}

impl Recorder {
    /// Re-derives the `RunResult` with the accumulator's documented
    /// arithmetic: bits folded per round in flow order, DoF as the
    /// body-weighted mean of (sum of active symbols / body length).
    fn reconstruct(&self) -> RunResult {
        let mut bits = vec![0.0f64; self.n_flows];
        let mut total_samples: u64 = 0;
        let mut dof_weighted = 0.0f64;
        let mut dof_time = 0.0f64;
        for (body, duration, flow_bits, actives) in &self.rounds {
            for (f, b) in flow_bits.iter().enumerate() {
                bits[f] += b;
            }
            total_samples += duration;
            let mean_streams: f64 =
                actives.iter().map(|&a| a as f64).sum::<f64>() / (*body).max(1) as f64;
            dof_weighted += mean_streams * *body as f64;
            dof_time += *body as f64;
        }
        let elapsed_s = total_samples as f64 / self.bandwidth_hz;
        let per_flow_mbps: Vec<f64> = bits.iter().map(|b| b / elapsed_s / 1e6).collect();
        RunResult {
            total_mbps: per_flow_mbps.iter().sum(),
            per_flow_mbps,
            mean_dof: if dof_time > 0.0 {
                dof_weighted / dof_time
            } else {
                0.0
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For every built-in policy on generated scenarios: the goodput and
    /// DoF totals reconstructed from `RoundObserver` events equal the
    /// returned `RunResult` fields exactly — and observing a run does
    /// not change its result.
    #[test]
    fn run_results_reconstruct_exactly_from_events(gen_seed in 0u64..500, family in 0u8..3) {
        let mut generator = ScenarioGenerator::new(gen_seed);
        let scenario = match family {
            0 => generator.n_pairs(2),
            1 => generator.hidden_terminal(2),
            _ => generator.asymmetric_antenna(2),
        };
        let built = build_scenario(scenario, gen_seed);
        let cfg = SimConfig { rounds: 3, ..SimConfig::default() };
        let engine = SimEngine::new(&built.topology, &built.scenario, &cfg);
        for name in BUILTIN_POLICY_NAMES {
            let policy = policy_from_name(name).expect("builtin");
            let mut recorder = Recorder::default();
            let observed = engine.run_observed(
                policy,
                &mut StdRng::seed_from_u64(gen_seed ^ 0x0B5E),
                &mut recorder,
            );
            // Observation is passive: same seed without a tap gives the
            // identical result.
            let plain = engine.run_policy(policy, &mut StdRng::seed_from_u64(gen_seed ^ 0x0B5E));
            proptest::prop_assert_eq!(&observed.per_flow_mbps, &plain.per_flow_mbps, "{} tap changed run", name);
            proptest::prop_assert_eq!(observed.total_mbps, plain.total_mbps, "{} tap changed run", name);
            proptest::prop_assert_eq!(observed.mean_dof, plain.mean_dof, "{} tap changed run", name);

            // The event stream carries the whole accounting.
            let rebuilt = recorder.reconstruct();
            proptest::prop_assert_eq!(&rebuilt.per_flow_mbps, &observed.per_flow_mbps, "{} per-flow", name);
            proptest::prop_assert_eq!(rebuilt.total_mbps, observed.total_mbps, "{} total", name);
            proptest::prop_assert_eq!(rebuilt.mean_dof, observed.mean_dof, "{} dof", name);

            // Stream shape: one round record and one medium acquisition
            // record per round, flow slices sized to the scenario.
            proptest::prop_assert_eq!(recorder.rounds.len(), cfg.rounds, "{}", name);
            proptest::prop_assert_eq!(recorder.rounds_declared, cfg.rounds, "{}", name);
            // Every round that carried data was preceded by a medium
            // acquisition (idle oracle rounds acquire nothing).
            let live_rounds = recorder.rounds.iter().filter(|r| r.0 > 0).count();
            proptest::prop_assert!(recorder.contentions.len() >= live_rounds,
                "{}: {} contentions for {} live rounds", name, recorder.contentions.len(), live_rounds);
            for (_, _, flow_bits, _) in &recorder.rounds {
                proptest::prop_assert_eq!(flow_bits.len(), built.scenario.flows.len(), "{}", name);
            }
            // Accepted joins always granted at least one stream.
            for j in &recorder.joins {
                if j.accepted {
                    proptest::prop_assert!(j.n_streams > 0, "{}: empty accepted join", name);
                }
            }
        }
    }
}
