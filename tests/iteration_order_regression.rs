//! Iteration-order regression pins (DESIGN.md §11 satellite).
//!
//! The determinism contract bans *observable* unordered-map iteration,
//! and PR 9 reworks the two remaining sites — [`Medium::links`] and
//! `ChannelCache::links` — onto sorted key lists. These tests pin the
//! full sweep statistics of a city-scale sparse sweep and a
//! mobility-bearing sweep (the two paths that consume those iterators)
//! to digests captured *before* the rework, proving the sorted storage
//! is bit-for-bit identical to the historical HashMap order, not merely
//! self-consistent.
//!
//! The digest folds every statistic through `f64::to_bits`, so no
//! tolerance can hide a divergence and NaN fairness still pins.

use nplus::prelude::*;
use nplus_testkit::city_scenario;

/// FNV-1a over the bit patterns of every field of every stat.
fn digest(stats: &[SweepStats]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for s in stats {
        eat(s.policy.as_bytes());
        eat(&(s.n_runs as u64).to_le_bytes());
        eat(&s.mean_total_mbps.to_bits().to_le_bytes());
        eat(&s.ci95_total_mbps.to_bits().to_le_bytes());
        eat(&s.mean_dof.to_bits().to_le_bytes());
        eat(&s.mean_fairness.to_bits().to_le_bytes());
        for f in &s.mean_per_flow_mbps {
            eat(&f.to_bits().to_le_bytes());
        }
    }
    h
}

/// 256-node procedural city on the sparse multi-cell world: the sweep
/// builds a sparse `Medium`, walks `Medium::links()` into the
/// `ChannelCache`, and runs both protocols over it. Digest captured on
/// the pre-rework HashMap storage.
#[test]
fn city_sweep_statistics_are_pinned() {
    let stats = SweepSpec::new(city_scenario(256))
        .rounds(2)
        .seed_count(2)
        .protocols(&[Protocol::Dot11n, Protocol::NPlus])
        .environment_named("multi_cell")
        .unwrap()
        .threads(1)
        .run();
    assert_eq!(
        digest(&stats),
        0x22de_8138_c9a2_bcd8,
        "city sweep statistics changed bit-for-bit (digest {:#x})",
        digest(&stats)
    );
}

/// Waypoint mobility consumes `ChannelCache::links()` every epoch to
/// find the moved node's incident links and rescale their tables.
/// Digest captured on the pre-rework HashMap key order.
#[test]
fn mobility_sweep_statistics_are_pinned() {
    let stats = SweepSpec::new(Scenario::three_pairs())
        .rounds(8)
        .seed_count(3)
        .protocols(&[Protocol::Dot11n, Protocol::NPlus])
        .mobility(MobilityModel::Waypoint {
            step_m: 2.0,
            epoch_rounds: 2,
        })
        .threads(1)
        .run();
    assert_eq!(
        digest(&stats),
        0xcd9c_fb43_2930_7244,
        "mobility sweep statistics changed bit-for-bit (digest {:#x})",
        digest(&stats)
    );
}
