//! Seed-for-seed bitwise identity between the enum-era engine and the
//! `MacPolicy` redesign.
//!
//! Every golden number below was recorded by running the **pre-refactor
//! implementation** (the `Protocol` match arms hard-coded in
//! `SimEngine::run`, `SimConfig::power_control` as a bool) at the exact
//! seeds listed, printed with Rust's shortest-round-trip float
//! formatting — so parsing the literals reproduces the original `f64`
//! bits exactly and every comparison below is `==`, no tolerance
//! anywhere. If a change to the policy/engine layering perturbs even
//! the last mantissa bit of any protocol's results, this suite fails.

use nplus::policy::GreedyJoin;
use nplus::sim::{Protocol, Scenario, SimConfig, SweepSpec, SweepStats};
use nplus_medium::topology::{build_topology, TopologyConfig};
use nplus_testkit::generator::ScenarioGenerator;
use nplus_testkit::scenario::build_scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Golden sweep statistics from the enum-era engine: scenario label,
/// policy name, mean total Mb/s, 95% CI half-width, mean DoF, mean
/// per-flow Mb/s. Recorded with `sweep(testbed=fitting, rounds=6,
/// seeds=0..4, protocols=[NPlus, Dot11n, Beamforming])` — and verified
/// at recording time to equal `sweep_parallel(.., threads=2)` exactly.
#[allow(clippy::type_complexity)]
const SWEEP_GOLDENS: [(&str, &str, f64, f64, f64, &[f64]); 15] = [
    (
        "three_pairs",
        "nplus",
        16.678524763564244,
        6.407396405511994,
        2.1487826631200124,
        &[3.7386034480246613, 7.068513184325944, 5.871408131213638],
    ),
    (
        "three_pairs",
        "dot11n",
        8.730782165957367,
        3.57664505239947,
        1.3544340844876996,
        &[4.854138116209649, 2.014150717610272, 1.8624933321374453],
    ),
    (
        "three_pairs",
        "beamforming",
        8.730782165957367,
        3.57664505239947,
        1.3544340844876996,
        &[4.854138116209649, 2.014150717610272, 1.8624933321374453],
    ),
    (
        "ap_downlink",
        "nplus",
        10.055937769529839,
        3.523682051582399,
        1.0,
        &[10.055937769529839, 0.0, 0.0],
    ),
    (
        "ap_downlink",
        "dot11n",
        11.060547248468518,
        3.859218327175464,
        1.3859409675412937,
        &[6.397158632519172, 2.053180113843407, 2.6102085021059374],
    ),
    (
        "ap_downlink",
        "beamforming",
        10.806391744287485,
        3.6535080824839175,
        1.0,
        &[10.806391744287485, 0.0, 0.0],
    ),
    (
        "gen_pairs3",
        "nplus",
        13.74841949320337,
        9.082935193380289,
        1.619149993797759,
        &[2.9989815025598254, 7.482906080288387, 3.2665319103551584],
    ),
    (
        "gen_pairs3",
        "dot11n",
        7.980252844881979,
        5.342429083263083,
        1.233373190086971,
        &[3.895902029304552, 1.7935316534556522, 2.290819162121774],
    ),
    (
        "gen_pairs3",
        "beamforming",
        7.980252844881979,
        5.342429083263083,
        1.233373190086971,
        &[3.895902029304552, 1.7935316534556522, 2.290819162121774],
    ),
    (
        "gen_hidden2",
        "nplus",
        12.712597889314297,
        9.434947985681951,
        2.9970087436723425,
        &[8.268702940108533, 4.443894949205765],
    ),
    (
        "gen_hidden2",
        "dot11n",
        12.207399625995702,
        9.061073200196448,
        2.7729538048686986,
        &[6.075881353294216, 6.131518272701487],
    ),
    (
        "gen_hidden2",
        "beamforming",
        12.207399625995702,
        9.061073200196448,
        2.7729538048686986,
        &[6.075881353294216, 6.131518272701487],
    ),
    (
        "gen_asym2",
        "nplus",
        9.053726588944919,
        3.0277271188117814,
        1.0,
        &[4.9426401583128285, 4.111086430632091],
    ),
    (
        "gen_asym2",
        "dot11n",
        7.766149068099314,
        4.048493638725454,
        1.0,
        &[3.690095378623087, 4.076053689476227],
    ),
    (
        "gen_asym2",
        "beamforming",
        7.766149068099314,
        4.048493638725454,
        1.0,
        &[3.690095378623087, 4.076053689476227],
    ),
];

fn golden_scenario(label: &str) -> Scenario {
    match label {
        "three_pairs" => Scenario::three_pairs(),
        "ap_downlink" => Scenario::ap_downlink(),
        "gen_pairs3" => ScenarioGenerator::new(7).n_pairs(3),
        "gen_hidden2" => ScenarioGenerator::new(9).hidden_terminal(2),
        "gen_asym2" => ScenarioGenerator::new(5).asymmetric_antenna(2),
        other => panic!("unknown golden scenario {other}"),
    }
}

fn assert_stats_match_goldens(label: &str, stats: &[SweepStats], context: &str) {
    let expected: Vec<_> = SWEEP_GOLDENS.iter().filter(|g| g.0 == label).collect();
    assert_eq!(stats.len(), expected.len(), "{label} ({context})");
    for (s, g) in stats.iter().zip(expected) {
        assert_eq!(s.policy, g.1, "{label} ({context})");
        assert_eq!(s.n_runs, 4, "{label} ({context})");
        assert_eq!(
            s.mean_total_mbps, g.2,
            "{label}/{} mean total drifted ({context})",
            g.1
        );
        assert_eq!(
            s.ci95_total_mbps, g.3,
            "{label}/{} CI drifted ({context})",
            g.1
        );
        assert_eq!(s.mean_dof, g.4, "{label}/{} DoF drifted ({context})", g.1);
        assert_eq!(
            s.mean_per_flow_mbps.as_slice(),
            g.5,
            "{label}/{} per-flow drifted ({context})",
            g.1
        );
    }
}

/// The tentpole acceptance criterion: `Protocol::{NPlus, Dot11n,
/// Beamforming}` as `MacPolicy` implementations reproduce the enum-era
/// sweep statistics bit-for-bit at every recorded seed — serially and
/// at 2 worker threads.
#[test]
fn enum_era_results_survive_the_policy_redesign_bitwise() {
    let protocols = [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming];
    for label in [
        "three_pairs",
        "ap_downlink",
        "gen_pairs3",
        "gen_hidden2",
        "gen_asym2",
    ] {
        let spec = SweepSpec::new(golden_scenario(label))
            .rounds(6)
            .seed_count(4)
            .protocols(&protocols);
        assert_stats_match_goldens(label, &spec.run(), "serial");
        let spec2 = SweepSpec::new(golden_scenario(label))
            .rounds(6)
            .seed_count(4)
            .protocols(&protocols)
            .threads(2);
        assert_stats_match_goldens(label, &spec2.run(), "threads 2");
    }
}

/// Golden `power_control = false` runs from the enum-era engine
/// (three_pairs, rounds = 10, sim seed `placement ^ 0x55`): placement
/// seed, total Mb/s, mean DoF, per-flow Mb/s. `GreedyJoin` must
/// reproduce each bit-for-bit — it is the same code path with the §4
/// branch decided by the policy instead of the removed config bool.
const GREEDY_GOLDENS: [(u64, f64, f64, &[f64]); 6] = [
    (
        0,
        16.885538039753257,
        1.8571428571428572,
        &[4.145305003427005, 12.065798492117889, 0.6744345442083619],
    ),
    (
        1,
        22.43207126948775,
        2.688584474885845,
        &[1.78173719376392, 2.818708240534521, 17.83162583518931],
    ),
    (
        2,
        13.614185797229451,
        1.6287015945330297,
        &[0.19414193339804142, 13.42004386383141, 0.0],
    ),
    (
        3,
        14.736655199200976,
        2.37874251497006,
        &[5.326822772167351, 0.8895794029519476, 8.520253024081677],
    ),
    (4, 9.673704414587332, 3.0, &[0.0, 0.0, 9.673704414587332]),
    (
        5,
        12.253835150963056,
        2.6070287539936103,
        &[1.9607843137254903, 2.9008939744924667, 7.392156862745098],
    ),
];

#[test]
fn greedy_join_reproduces_the_power_control_ablation_bitwise() {
    for (seed, total, dof, per_flow) in GREEDY_GOLDENS {
        let built = build_scenario(Scenario::three_pairs(), seed);
        let cfg = SimConfig {
            rounds: 10,
            ..SimConfig::default()
        };
        let r = built.run_policy(&GreedyJoin, &cfg, seed ^ 0x55);
        assert_eq!(r.total_mbps, total, "seed {seed} total");
        assert_eq!(r.mean_dof, dof, "seed {seed} DoF");
        assert_eq!(r.per_flow_mbps.as_slice(), per_flow, "seed {seed} per-flow");
    }
}

/// Golden single-run results (three_pairs on placement 11, rounds = 8,
/// run RNG seed 5) straight through `simulate` — the enum entry point
/// itself, not just the sweep wrappers.
#[test]
fn simulate_entry_point_matches_enum_era_bitwise() {
    let goldens: [(Protocol, f64, f64, &[f64]); 3] = [
        (
            Protocol::NPlus,
            17.30373001776199,
            2.339578454332553,
            &[3.580817051509769, 5.371225577264654, 8.351687388987566],
        ),
        (
            Protocol::Dot11n,
            13.64467005076142,
            2.1379310344827585,
            &[3.411167512690355, 3.411167512690355, 6.82233502538071],
        ),
        (
            Protocol::Beamforming,
            13.64467005076142,
            2.1379310344827585,
            &[3.411167512690355, 3.411167512690355, 6.82233502538071],
        ),
    ];
    let scenario = Scenario::three_pairs();
    let tb = nplus_channel::placement::Testbed::sigcomm11();
    let mut rng = StdRng::seed_from_u64(11);
    let topo = build_topology(
        &tb,
        &TopologyConfig::new(scenario.antennas.clone()),
        10e6,
        11,
        &mut rng,
    );
    let cfg = SimConfig {
        rounds: 8,
        ..SimConfig::default()
    };
    for (protocol, total, dof, per_flow) in goldens {
        let r = nplus::sim::simulate(
            &topo,
            &scenario,
            protocol,
            &cfg,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(r.total_mbps, total, "{protocol} total");
        assert_eq!(r.mean_dof, dof, "{protocol} DoF");
        assert_eq!(r.per_flow_mbps.as_slice(), per_flow, "{protocol} per-flow");
    }
}
