//! End-to-end integration: the full sample-level path through all crates.
//!
//! These tests run the scenario of the paper's Fig. 2 on the simulated
//! medium with the real OFDM chain: preambles on the air, channel
//! estimation at receivers, precoding from reciprocity-derived knowledge,
//! concurrent transmission, and Viterbi-decoded payloads.

use nplus::precoder::{compute_precoders, OwnReceiver, ProtectedReceiver};
use nplus_channel::fading::DelayProfile;
use nplus_channel::mimo::MimoLink;
use nplus_linalg::{CMatrix, CVector, Complex64, Subspace};
use nplus_medium::medium::{Medium, Transmission};
use nplus_phy::chanest::estimate_mimo_from_preamble;
use nplus_phy::fft::fft;
use nplus_phy::modulation::{demodulate, modulate, Modulation};
use nplus_phy::ofdm::{assemble_symbol, disassemble_symbol};
use nplus_phy::params::{data_subcarrier_indices, occupied_subcarrier_indices, OfdmConfig};
use nplus_phy::preamble::{mimo_preamble, preamble_len};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a medium with the Fig. 2 node set: tx1/rx1 single antenna,
/// tx2/rx2 two antennas.
fn fig2_medium(seed: u64) -> (Medium, [nplus_medium::NodeId; 4]) {
    let cfg = OfdmConfig::usrp2();
    let mut m = Medium::new(cfg.bandwidth_hz, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let tx1 = m.add_node(1, 0.0);
    let rx1 = m.add_node(1, 0.0);
    let tx2 = m.add_node(2, 0.0);
    let rx2 = m.add_node(2, 0.0);
    // Strong links everywhere (SNR 25–30 dB) so decoding is clean.
    m.set_link(tx1, rx1, MimoLink::sample(1, 1, 25.0, &DelayProfile::los(), &mut rng));
    m.set_link(tx1, rx2, MimoLink::sample(1, 2, 18.0, &DelayProfile::los(), &mut rng));
    m.set_link(tx2, rx1, MimoLink::sample(2, 1, 20.0, &DelayProfile::los(), &mut rng));
    m.set_link(tx2, rx2, MimoLink::sample(2, 2, 28.0, &DelayProfile::los(), &mut rng));
    m.set_link(tx1, tx2, MimoLink::sample(1, 2, 15.0, &DelayProfile::los(), &mut rng));
    m.set_link(rx1, tx2, MimoLink::sample(1, 2, 15.0, &DelayProfile::los(), &mut rng));
    m.set_link(rx1, rx2, MimoLink::sample(1, 2, 12.0, &DelayProfile::los(), &mut rng));
    m.set_link(tx1, rx1, MimoLink::sample(1, 1, 25.0, &DelayProfile::los(), &mut rng));
    (m, [tx1, rx1, tx2, rx2])
}

/// rx estimates tx's per-antenna channels from an on-air MIMO preamble.
#[test]
fn over_the_air_channel_estimation_matches_truth() {
    let cfg = OfdmConfig::usrp2();
    let (mut medium, [_, _, tx2, rx2]) = fig2_medium(1);
    medium.set_noise_power(0.0); // isolate estimation from noise
    let streams = mimo_preamble(&cfg, 2);
    let plen = preamble_len(&cfg, 2);
    medium.transmit(Transmission {
        from: tx2,
        start: 0,
        streams,
        cfo_precompensation_hz: 0.0,
    });
    let capture = medium.capture(rx2, 0, plen);
    let truth = medium.link(tx2, rx2).unwrap();
    for rx_ant in 0..2 {
        let ests = estimate_mimo_from_preamble(&capture[rx_ant], 2, &cfg);
        for (tx_ant, est) in ests.iter().enumerate() {
            for &k in &occupied_subcarrier_indices() {
                let h_true = truth.channel_matrix(k, cfg.fft_len)[(rx_ant, tx_ant)];
                // Multipath spreads the preamble slightly across symbol
                // boundaries; the estimate is very close but not exact.
                assert!(
                    est.h[k].approx_eq(h_true, 0.35 + 0.05 * h_true.abs()),
                    "rx{rx_ant} tx{tx_ant} bin {k}: {:?} vs {h_true:?}",
                    est.h[k]
                );
            }
        }
    }
}

/// The full Fig. 2 join at sample level: tx2 nulls at rx1 while rx1
/// decodes tx1's QPSK symbols through the whole OFDM chain.
#[test]
fn fig2_concurrent_transmission_sample_level() {
    let cfg = OfdmConfig::usrp2();
    let (mut medium, [tx1, rx1, tx2, rx2]) = fig2_medium(5);
    medium.set_noise_power(1.0);
    let mut rng = StdRng::seed_from_u64(77);

    // tx1's transmission: OFDM QPSK symbols.
    let n_symbols = 20usize;
    let bits1: Vec<u8> = (0..96 * n_symbols).map(|_| rng.gen_range(0..2u8)).collect();
    let mut tx1_wave = Vec::new();
    let mut tx1_carriers = Vec::new();
    for s in 0..n_symbols {
        let syms = modulate(&bits1[96 * s..96 * (s + 1)], Modulation::Qpsk);
        tx1_wave.extend(assemble_symbol(&syms, s, &cfg));
        tx1_carriers.push(syms);
    }
    medium.transmit(Transmission {
        from: tx1,
        start: 0,
        streams: vec![tx1_wave],
        cfo_precompensation_hz: 0.0,
    });

    // tx2 precodes a concurrent stream using the true reverse channel
    // (reciprocity; hardware error exercised elsewhere).
    let h_to_rx1 = medium.link(tx2, rx1).unwrap().channel_matrices(cfg.fft_len);
    let h_to_rx2 = medium.link(tx2, rx2).unwrap().channel_matrices(cfg.fft_len);
    let bits2: Vec<u8> = (0..96 * n_symbols).map(|_| rng.gen_range(0..2u8)).collect();
    // Per-subcarrier precoding vectors.
    let mut precoders: Vec<Option<CVector>> = vec![None; cfg.fft_len];
    for &k in &occupied_subcarrier_indices() {
        let p = compute_precoders(
            2,
            &[ProtectedReceiver::nulling(h_to_rx1[k].clone())],
            &[OwnReceiver {
                channel: h_to_rx2[k].clone(),
                n_streams: 1,
                unwanted: Subspace::zero(2),
            }],
        )
        .unwrap();
        precoders[k] = Some(p.vectors[0].clone());
    }
    // Build tx2's two antenna streams: per subcarrier, symbol × v.
    let mut ant_streams = vec![Vec::new(), Vec::new()];
    for s in 0..n_symbols {
        let syms = modulate(&bits2[96 * s..96 * (s + 1)], Modulation::Qpsk);
        for ant in 0..2 {
            // Scale each data subcarrier by the precoder component.
            let scaled: Vec<Complex64> = data_subcarrier_indices()
                .iter()
                .zip(&syms)
                .map(|(&bin, &sym)| sym * precoders[bin].as_ref().unwrap()[ant])
                .collect();
            ant_streams[ant].extend(assemble_symbol(&scaled, s, &cfg));
        }
    }
    medium.transmit(Transmission {
        from: tx2,
        start: 0,
        streams: ant_streams,
        cfo_precompensation_hz: 0.0,
    });

    // rx1 decodes tx1 as if alone: equalize with tx1's channel.
    let h11 = medium.link(tx1, rx1).unwrap().channel_matrices(cfg.fft_len);
    let capture = medium.capture(rx1, 0, n_symbols * cfg.symbol_len());
    let mut errors = 0usize;
    let mut total = 0usize;
    for s in 0..n_symbols {
        let obs = disassemble_symbol(
            &capture[0][s * cfg.symbol_len()..(s + 1) * cfg.symbol_len()],
            &cfg,
        );
        let eq: Vec<Complex64> = data_subcarrier_indices()
            .iter()
            .map(|&bin| {
                let h = h11[bin][(0, 0)];
                obs.freq[bin] / h
            })
            .collect();
        let rx_bits = demodulate(&eq, Modulation::Qpsk);
        total += rx_bits.len();
        errors += rx_bits
            .iter()
            .zip(&bits1[96 * s..96 * (s + 1)])
            .filter(|(a, b)| a != b)
            .count();
    }
    let ber = errors as f64 / total as f64;
    assert!(
        ber < 0.01,
        "rx1 BER {ber} — tx2's nulling failed to protect the ongoing reception"
    );

    // And rx2 decodes tx2's stream by zero-forcing tx1's direction away.
    let h12 = medium.link(tx1, rx2).unwrap().channel_matrices(cfg.fft_len);
    let h22 = medium.link(tx2, rx2).unwrap().channel_matrices(cfg.fft_len);
    let capture2 = medium.capture(rx2, 0, n_symbols * cfg.symbol_len());
    let mut errors2 = 0usize;
    for s in 0..n_symbols {
        let obs: Vec<_> = (0..2)
            .map(|ant| {
                disassemble_symbol(
                    &capture2[ant][s * cfg.symbol_len()..(s + 1) * cfg.symbol_len()],
                    &cfg,
                )
            })
            .collect();
        for (di, &bin) in data_subcarrier_indices().iter().enumerate() {
            let y = CVector::from_vec(vec![obs[0].freq[bin], obs[1].freq[bin]]);
            // Effective channels: tx1's direction and tx2's precoded one.
            let h_int = h12[bin].col(0);
            let h_want = h22[bin].mul_vec(precoders[bin].as_ref().unwrap());
            let a = CMatrix::from_cols(&[h_want, h_int]);
            let w = nplus_linalg::pinv(&a).unwrap();
            let decoded = w.mul_vec(&y)[0];
            let rx_bits = demodulate(&[decoded], Modulation::Qpsk);
            let want = &bits2[96 * s + 2 * di..96 * s + 2 * di + 2];
            errors2 += rx_bits.iter().zip(want).filter(|(a, b)| a != b).count();
        }
    }
    let ber2 = errors2 as f64 / total as f64;
    assert!(ber2 < 0.02, "rx2 BER {ber2} — concurrent stream not decodable");
}

/// FFT-domain sanity: what the medium delivers per subcarrier equals the
/// link's channel matrix applied to the transmitted frequency symbol.
#[test]
fn medium_is_consistent_across_domains() {
    let cfg = OfdmConfig::usrp2();
    let (mut medium, [tx1, rx1, ..]) = fig2_medium(3);
    medium.set_noise_power(0.0);
    let mut rng = StdRng::seed_from_u64(4);
    let bits: Vec<u8> = (0..96).map(|_| rng.gen_range(0..2u8)).collect();
    let syms = modulate(&bits, Modulation::Qpsk);
    let wave = assemble_symbol(&syms, 0, &cfg);
    medium.transmit(Transmission {
        from: tx1,
        start: 0,
        streams: vec![wave.clone()],
        cfo_precompensation_hz: 0.0,
    });
    let capture = medium.capture(rx1, 0, cfg.symbol_len());
    let h = medium.link(tx1, rx1).unwrap().channel_matrices(cfg.fft_len);
    // Compare the FFT of the received body against H·X per subcarrier.
    let rx_freq = fft(&capture[0][cfg.cp_len..]);
    let tx_freq = fft(&wave[cfg.cp_len..]);
    for &k in &occupied_subcarrier_indices() {
        let expect = tx_freq[k] * h[k][(0, 0)];
        assert!(
            rx_freq[k].approx_eq(expect, 1e-6 * (1.0 + expect.abs())),
            "bin {k}: {:?} vs {expect:?}",
            rx_freq[k]
        );
    }
}
