//! End-to-end integration: the full sample-level path through all crates.
//!
//! These tests run the scenario of the paper's Fig. 2 on the simulated
//! medium with the real OFDM chain: preambles on the air, channel
//! estimation at receivers, precoding from reciprocity-derived knowledge,
//! concurrent transmission, and Viterbi-decoded payloads.

use nplus::precoder::{compute_precoders, OwnReceiver, ProtectedReceiver};
use nplus_linalg::{CMatrix, CVector, Complex64, Subspace};
use nplus_medium::medium::Transmission;
use nplus_phy::chanest::estimate_mimo_from_preamble;
use nplus_phy::fft::fft;
use nplus_phy::modulation::{demodulate, modulate, Modulation};
use nplus_phy::ofdm::{assemble_symbol, disassemble_symbol};
use nplus_phy::params::{data_subcarrier_indices, occupied_subcarrier_indices, OfdmConfig};
use nplus_phy::preamble::{mimo_preamble, preamble_len};
use nplus_testkit::fixtures::random_bits;
use nplus_testkit::scenario::two_pair_medium;

/// rx estimates tx's per-antenna channels from an on-air MIMO preamble.
#[test]
fn over_the_air_channel_estimation_matches_truth() {
    let cfg = OfdmConfig::usrp2();
    let pair = two_pair_medium(1);
    let (mut medium, tx2, rx2) = (pair.medium, pair.tx2, pair.rx2);
    medium.set_noise_power(0.0); // isolate estimation from noise
    let streams = mimo_preamble(&cfg, 2);
    let plen = preamble_len(&cfg, 2);
    medium.transmit(Transmission {
        from: tx2,
        start: 0,
        streams,
        cfo_precompensation_hz: 0.0,
    });
    let capture = medium.capture(rx2, 0, plen);
    let truth = medium.link(tx2, rx2).unwrap();
    for rx_ant in 0..2 {
        let ests = estimate_mimo_from_preamble(&capture[rx_ant], 2, &cfg);
        for (tx_ant, est) in ests.iter().enumerate() {
            for &k in &occupied_subcarrier_indices() {
                let h_true = truth.channel_matrix(k, cfg.fft_len)[(rx_ant, tx_ant)];
                // Multipath spreads the preamble slightly across symbol
                // boundaries; the estimate is very close but not exact.
                nplus_testkit::assert_c64_close!(
                    est.h[k],
                    h_true,
                    0.35 + 0.05 * h_true.abs(),
                    "rx{rx_ant} tx{tx_ant} bin {k}"
                );
            }
        }
    }
}

/// The full Fig. 2 join at sample level: tx2 nulls at rx1 while rx1
/// decodes tx1's QPSK symbols through the whole OFDM chain.
#[test]
fn fig2_concurrent_transmission_sample_level() {
    let cfg = OfdmConfig::usrp2();
    let pair = two_pair_medium(5);
    let [tx1, rx1, tx2, rx2] = pair.nodes();
    let mut medium = pair.medium;
    medium.set_noise_power(1.0);
    let mut rng = nplus_testkit::rng(77);

    // tx1's transmission: OFDM QPSK symbols.
    let n_symbols = 20usize;
    let bits1 = random_bits(96 * n_symbols, &mut rng);
    let mut tx1_wave = Vec::new();
    let mut tx1_carriers = Vec::new();
    for s in 0..n_symbols {
        let syms = modulate(&bits1[96 * s..96 * (s + 1)], Modulation::Qpsk);
        tx1_wave.extend(assemble_symbol(&syms, s, &cfg));
        tx1_carriers.push(syms);
    }
    medium.transmit(Transmission {
        from: tx1,
        start: 0,
        streams: vec![tx1_wave],
        cfo_precompensation_hz: 0.0,
    });

    // tx2 precodes a concurrent stream using the true reverse channel
    // (reciprocity; hardware error exercised elsewhere).
    let h_to_rx1 = medium.link(tx2, rx1).unwrap().channel_matrices(cfg.fft_len);
    let h_to_rx2 = medium.link(tx2, rx2).unwrap().channel_matrices(cfg.fft_len);
    let bits2 = random_bits(96 * n_symbols, &mut rng);
    // Per-subcarrier precoding vectors.
    let mut precoders: Vec<Option<CVector>> = vec![None; cfg.fft_len];
    for &k in &occupied_subcarrier_indices() {
        let p = compute_precoders(
            2,
            &[ProtectedReceiver::nulling(h_to_rx1[k].clone())],
            &[OwnReceiver {
                channel: h_to_rx2[k].clone(),
                n_streams: 1,
                unwanted: Subspace::zero(2),
            }],
        )
        .unwrap();
        precoders[k] = Some(p.vectors[0].clone());
    }
    // Build tx2's two antenna streams: per subcarrier, symbol × v.
    let mut ant_streams = vec![Vec::new(), Vec::new()];
    for s in 0..n_symbols {
        let syms = modulate(&bits2[96 * s..96 * (s + 1)], Modulation::Qpsk);
        for ant in 0..2 {
            // Scale each data subcarrier by the precoder component.
            let scaled: Vec<Complex64> = data_subcarrier_indices()
                .iter()
                .zip(&syms)
                .map(|(&bin, &sym)| sym * precoders[bin].as_ref().unwrap()[ant])
                .collect();
            ant_streams[ant].extend(assemble_symbol(&scaled, s, &cfg));
        }
    }
    medium.transmit(Transmission {
        from: tx2,
        start: 0,
        streams: ant_streams,
        cfo_precompensation_hz: 0.0,
    });

    // rx1 decodes tx1 as if alone: equalize with tx1's channel.
    let h11 = medium.link(tx1, rx1).unwrap().channel_matrices(cfg.fft_len);
    let capture = medium.capture(rx1, 0, n_symbols * cfg.symbol_len());
    let mut rx1_bits = Vec::with_capacity(96 * n_symbols);
    for s in 0..n_symbols {
        let obs = disassemble_symbol(
            &capture[0][s * cfg.symbol_len()..(s + 1) * cfg.symbol_len()],
            &cfg,
        );
        let eq: Vec<Complex64> = data_subcarrier_indices()
            .iter()
            .map(|&bin| {
                let h = h11[bin][(0, 0)];
                obs.freq[bin] / h
            })
            .collect();
        rx1_bits.extend(demodulate(&eq, Modulation::Qpsk));
    }
    nplus_testkit::assert_ber_below!(
        &rx1_bits,
        &bits1,
        0.01,
        "at rx1 — tx2's nulling failed to protect the ongoing reception"
    );

    // And rx2 decodes tx2's stream by zero-forcing tx1's direction away.
    let h12 = medium.link(tx1, rx2).unwrap().channel_matrices(cfg.fft_len);
    let h22 = medium.link(tx2, rx2).unwrap().channel_matrices(cfg.fft_len);
    let capture2 = medium.capture(rx2, 0, n_symbols * cfg.symbol_len());
    let mut rx2_bits = vec![0u8; 96 * n_symbols];
    for s in 0..n_symbols {
        let obs: Vec<_> = (0..2)
            .map(|ant| {
                disassemble_symbol(
                    &capture2[ant][s * cfg.symbol_len()..(s + 1) * cfg.symbol_len()],
                    &cfg,
                )
            })
            .collect();
        for (di, &bin) in data_subcarrier_indices().iter().enumerate() {
            let y = CVector::from_vec(vec![obs[0].freq[bin], obs[1].freq[bin]]);
            // Effective channels: tx1's direction and tx2's precoded one.
            let h_int = h12[bin].col(0);
            let h_want = h22[bin].mul_vec(precoders[bin].as_ref().unwrap());
            let a = CMatrix::from_cols(&[h_want, h_int]);
            let w = nplus_linalg::pinv(&a).unwrap();
            let decoded = w.mul_vec(&y)[0];
            rx2_bits[96 * s + 2 * di..96 * s + 2 * di + 2]
                .copy_from_slice(&demodulate(&[decoded], Modulation::Qpsk));
        }
    }
    nplus_testkit::assert_ber_below!(
        &rx2_bits,
        &bits2,
        0.02,
        "at rx2 — concurrent stream not decodable"
    );
}

/// FFT-domain sanity: what the medium delivers per subcarrier equals the
/// link's channel matrix applied to the transmitted frequency symbol.
#[test]
fn medium_is_consistent_across_domains() {
    let cfg = OfdmConfig::usrp2();
    let pair = two_pair_medium(3);
    let (mut medium, tx1, rx1) = (pair.medium, pair.tx1, pair.rx1);
    medium.set_noise_power(0.0);
    let mut rng = nplus_testkit::rng(4);
    let bits = random_bits(96, &mut rng);
    let syms = modulate(&bits, Modulation::Qpsk);
    let wave = assemble_symbol(&syms, 0, &cfg);
    medium.transmit(Transmission {
        from: tx1,
        start: 0,
        streams: vec![wave.clone()],
        cfo_precompensation_hz: 0.0,
    });
    let capture = medium.capture(rx1, 0, cfg.symbol_len());
    let h = medium.link(tx1, rx1).unwrap().channel_matrices(cfg.fft_len);
    // Compare the FFT of the received body against H·X per subcarrier.
    let rx_freq = fft(&capture[0][cfg.cp_len..]);
    let tx_freq = fft(&wave[cfg.cp_len..]);
    for &k in &occupied_subcarrier_indices() {
        let expect = tx_freq[k] * h[k][(0, 0)];
        nplus_testkit::assert_c64_close!(
            rx_freq[k],
            expect,
            1e-6 * (1.0 + expect.abs()),
            "bin {k}"
        );
    }
}
