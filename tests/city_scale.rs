//! City-scale sparse-world integration (DESIGN.md §9): the sparse
//! link-storage path must be a provably-identical generalisation of the
//! dense one, traffic models must preserve the paper's protocol
//! ordering, and thousand-node multi-cell sweeps must keep the
//! serial ≡ parallel determinism contract.

use nplus::prelude::*;
use nplus_channel::environment::{EnvironmentError, Sigcomm11Indoor};
use nplus_channel::fading::DelayProfile;
use nplus_channel::impairments::HardwareProfile;
use nplus_channel::placement::{Location, Testbed};
use nplus_testkit::city_scenario;
use nplus_testkit::generator::ScenarioGenerator;
use proptest::{proptest, ProptestConfig};
use rand::RngCore;

/// The paper's indoor world with the sparse-wiring hooks force-enabled
/// but set below/above every physical budget: the received-power floor
/// admits every link a real radio could ever see, and the range cap is
/// far beyond the 40-slot map. Every propagation decision delegates to
/// the stock [`Sigcomm11Indoor`], so any result difference against the
/// dense default isolates the sparse storage path itself.
struct FlooredIndoor(Sigcomm11Indoor);

impl ChannelEnvironment for FlooredIndoor {
    fn name(&self) -> &str {
        "floored_sigcomm11"
    }
    fn capacity(&self) -> usize {
        self.0.capacity()
    }
    fn testbed(&self, n_nodes: usize) -> Result<Testbed, EnvironmentError> {
        self.0.testbed(n_nodes)
    }
    fn link_is_nlos(&self, testbed: &Testbed, a: &Location, b: &Location) -> bool {
        self.0.link_is_nlos(testbed, a, b)
    }
    fn sample_loss_db(&self, distance_m: f64, nlos: bool, rng: &mut dyn RngCore) -> f64 {
        self.0.sample_loss_db(distance_m, nlos, rng)
    }
    fn amplitude_scale(&self, loss_db: f64) -> f64 {
        self.0.amplitude_scale(loss_db)
    }
    fn delay_profile(&self, nlos: bool) -> DelayProfile {
        self.0.delay_profile(nlos)
    }
    fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64 {
        self.0.oscillator_offset_hz(rng)
    }
    fn hardware(&self) -> HardwareProfile {
        self.0.hardware()
    }
    fn join_power_l_db(&self) -> f64 {
        self.0.join_power_l_db()
    }
    fn link_floor_dbm(&self) -> Option<f64> {
        Some(-1e9)
    }
    fn max_link_range(&self) -> Option<f64> {
        Some(1e9)
    }
}

/// Bitwise equality of sweep statistics — `to_bits` on every float, so
/// NaN fairness compares equal to itself and no tolerance can hide a
/// divergence.
fn stats_bits_identical(a: &[SweepStats], b: &[SweepStats]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.policy == y.policy
                && x.n_runs == y.n_runs
                && x.mean_total_mbps.to_bits() == y.mean_total_mbps.to_bits()
                && x.ci95_total_mbps.to_bits() == y.ci95_total_mbps.to_bits()
                && x.mean_dof.to_bits() == y.mean_dof.to_bits()
                && x.mean_fairness.to_bits() == y.mean_fairness.to_bits()
                && x.mean_per_flow_mbps.len() == y.mean_per_flow_mbps.len()
                && x.mean_per_flow_mbps
                    .iter()
                    .zip(&y.mean_per_flow_mbps)
                    .all(|(u, v)| u.to_bits() == v.to_bits())
        })
}

/// All five registered policies, attached to a fresh spec.
fn all_policies(spec: SweepSpec) -> SweepSpec {
    let mut spec = spec;
    for name in BUILTIN_POLICY_NAMES {
        spec = spec.policy_named(name).unwrap();
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sparse ≡ dense: on every generated ≤32-node scenario, the sweep
    /// with the sparse hooks enabled-but-permissive (floor below every
    /// budget, range beyond the map) is bit-for-bit identical to the
    /// dense default — under all five policies, at 1 and 2 threads.
    #[test]
    fn sparse_storage_is_bit_identical_to_dense(gen_seed in 0u64..10_000) {
        let scenario = ScenarioGenerator::new(gen_seed).random_for_capacity(32);
        let fresh = || {
            all_policies(
                SweepSpec::new(scenario.clone())
                    .rounds(4)
                    .seed_count(2),
            )
        };
        let dense = fresh().threads(1).run();
        for threads in [1, 2] {
            let sparse = fresh()
                .environment(FlooredIndoor(Sigcomm11Indoor::new()))
                .threads(threads)
                .run();
            proptest::prop_assert!(
                stats_bits_identical(&dense, &sparse),
                "sparse path diverged from dense at {} threads (gen seed {})",
                threads,
                gen_seed
            );
        }
    }
}

/// The paper's headline ordering — n+ at least matches 802.11n — must
/// survive non-saturated traffic: under a light and a heavy offered
/// load, total goodput under n+ stays >= 802.11n on the same world
/// (deterministic: fixed seeds, bit-reproducible engine, so this is a
/// regression pin rather than a statistical claim).
#[test]
fn nplus_matches_or_beats_dot11n_under_load() {
    for traffic in [
        TrafficModel::Poisson {
            mean_per_round: 0.5,
        },
        TrafficModel::Poisson {
            mean_per_round: 4.0,
        },
        TrafficModel::Bursty {
            mean_on_rounds: 3.0,
            mean_off_rounds: 5.0,
        },
    ] {
        let stats = SweepSpec::new(Scenario::three_pairs())
            .rounds(12)
            .seed_count(4)
            .traffic(traffic)
            .protocols(&[Protocol::Dot11n, Protocol::NPlus])
            .run();
        assert_eq!(stats[0].policy, "dot11n");
        assert_eq!(stats[1].policy, "nplus");
        assert!(
            stats[1].mean_total_mbps >= stats[0].mean_total_mbps - 1e-9,
            "{traffic}: n+ {} Mb/s fell below 802.11n {} Mb/s",
            stats[1].mean_total_mbps,
            stats[0].mean_total_mbps
        );
    }
}

/// A 1024-node procedural city in the sparse multi-cell world completes
/// and keeps the determinism contract: `--threads 2` statistics are
/// bit-for-bit identical to the serial run.
#[test]
fn thousand_node_city_is_deterministic_across_threads() {
    let scenario = city_scenario(1024);
    assert_eq!(scenario.antennas.len(), 1024);
    let fresh = || {
        SweepSpec::new(scenario.clone())
            .rounds(3)
            .seed_count(2)
            .protocols(&[Protocol::Dot11n, Protocol::NPlus])
            .environment_named("multi_cell")
            .unwrap()
    };
    let serial = fresh().threads(1).run();
    let parallel = fresh().threads(2).run();
    assert!(
        stats_bits_identical(&serial, &parallel),
        "city sweep diverged between serial and 2-thread runs"
    );
    // The sparse world actually carries traffic: some flow in some cell
    // delivered bits under both policies.
    assert!(serial.iter().all(|s| s.mean_total_mbps > 0.0));
}
