//! Seed-for-seed bitwise identity between the pre-environment
//! `build_topology` world and the pluggable `ChannelEnvironment`
//! redesign.
//!
//! Every golden number below was recorded by running the
//! **pre-refactor implementation** (the hard-wired testbed draw, path
//! loss, LOS/NLOS profiles and uniform oscillator draw inside
//! `build_topology`) at the exact seeds listed, printed with Rust's
//! shortest-round-trip float formatting — so parsing the literals
//! reproduces the original `f64` bits exactly and every comparison
//! below is `==`, no tolerance anywhere. If routing the world through
//! the `Sigcomm11Indoor` environment perturbs even the last mantissa
//! bit of a placement, oscillator offset, channel tap DFT or sweep
//! statistic, this suite fails.

use nplus::prelude::*;
use nplus_channel::placement::Testbed;
use nplus_medium::topology::{build_environment_topology, build_topology, TopologyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Golden topology draws from the enum-era `build_topology` (testbed
/// `sigcomm11()`, antennas `[1, 2, 3]`, 10 MHz, placement RNG seeded
/// with the seed itself): per-node `(x, y, nlos, oscillator_offset_hz)`
/// and per-link `(i, j, amplitude, Re h[0,0], Im h[0,0])` at FFT bin 5
/// of 64.
#[allow(clippy::type_complexity)]
const TOPOLOGY_GOLDENS: [(
    u64,
    [(f64, f64, bool, f64); 3],
    [(usize, usize, f64, f64, f64); 3],
); 2] = [
    (
        5,
        [
            (14.5, 9.5, true, 338.17959327237634),
            (6.5, 9.0, true, -260.03732339636707),
            (7.5, 5.5, false, -2087.88676514294),
        ],
        [
            (0, 1, 5.140391118570725, 5.568574689451622, 4.74881931582464),
            (
                0,
                2,
                3.156651351979228,
                1.816189878754156,
                1.0280767500926133,
            ),
            (
                1,
                2,
                13.204467029147779,
                -4.084944823869176,
                5.575708661897842,
            ),
        ],
    ),
    (
        12,
        [
            (2.0, 5.0, false, -3409.6887487595022),
            (9.5, 9.5, true, 1668.066828459959),
            (12.0, 9.0, true, 1131.5829201228569),
        ],
        [
            (
                0,
                1,
                4.4193253474543415,
                -4.631793084687858,
                -1.264888614200337,
            ),
            (
                0,
                2,
                1.7768957403196983,
                -0.016689784963131376,
                1.937625806676704,
            ),
            (
                1,
                2,
                56.91218118892074,
                40.521969445650264,
                -27.702710632513742,
            ),
        ],
    ),
];

fn assert_topology_matches_goldens(topo: &nplus_medium::Topology, seed: u64, context: &str) {
    let (_, nodes, links) = TOPOLOGY_GOLDENS
        .iter()
        .find(|g| g.0 == seed)
        .expect("golden seed");
    for (i, &(x, y, nlos, offset)) in nodes.iter().enumerate() {
        assert_eq!(
            topo.placements[i].pos.x, x,
            "seed {seed} node {i} x ({context})"
        );
        assert_eq!(
            topo.placements[i].pos.y, y,
            "seed {seed} node {i} y ({context})"
        );
        assert_eq!(
            topo.placements[i].nlos, nlos,
            "seed {seed} node {i} nlos ({context})"
        );
        assert_eq!(
            topo.medium.node(topo.nodes[i]).oscillator_offset_hz,
            offset,
            "seed {seed} node {i} oscillator offset drifted ({context})"
        );
    }
    for &(i, j, amp, re, im) in links {
        let link = topo.medium.link(topo.nodes[i], topo.nodes[j]).unwrap();
        assert_eq!(
            link.amplitude(),
            amp,
            "seed {seed} link {i}->{j} amplitude drifted ({context})"
        );
        let h = link.channel_matrix(5, 64);
        assert_eq!(
            h[(0, 0)].re,
            re,
            "seed {seed} link {i}->{j} Re h00 drifted ({context})"
        );
        assert_eq!(
            h[(0, 0)].im,
            im,
            "seed {seed} link {i}->{j} Im h00 drifted ({context})"
        );
    }
}

/// The tentpole acceptance criterion at the topology level: both the
/// surviving `build_topology` wrapper and the explicit
/// [`SIGCOMM11_INDOOR`] environment path reproduce the pre-refactor
/// placements, oscillator offsets and channel responses bit-for-bit.
#[test]
fn sigcomm11_environment_reproduces_pre_refactor_topologies_bitwise() {
    let antennas = vec![1usize, 2, 3];
    let tb = Testbed::sigcomm11();
    for &(seed, _, _) in &TOPOLOGY_GOLDENS {
        let wrapper = build_topology(
            &tb,
            &TopologyConfig::new(antennas.clone()),
            10e6,
            seed,
            &mut StdRng::seed_from_u64(seed),
        );
        assert_topology_matches_goldens(&wrapper, seed, "build_topology wrapper");
        let mut rng = StdRng::seed_from_u64(seed);
        let env_path =
            build_environment_topology(&SIGCOMM11_INDOOR, &tb, &antennas, 10e6, seed, &mut rng)
                .expect("scenario fits the paper map");
        assert_topology_matches_goldens(&env_path, seed, "environment path");
    }
}

/// Golden sweep statistics recorded from the pre-environment engine:
/// scenario label, policy name, mean total Mb/s, 95% CI half-width,
/// mean DoF, mean per-flow Mb/s. Recorded with `SweepSpec` defaults
/// (auto-fitted map, rounds = 6, seeds = 0..4) — and verified at
/// recording time to equal the 2-thread run exactly.
#[allow(clippy::type_complexity)]
const SWEEP_GOLDENS: [(&str, &str, f64, f64, f64, &[f64]); 6] = [
    (
        "three_pairs",
        "nplus",
        16.678524763564244,
        6.407396405511994,
        2.1487826631200124,
        &[3.7386034480246613, 7.068513184325944, 5.871408131213638],
    ),
    (
        "three_pairs",
        "dot11n",
        8.730782165957367,
        3.57664505239947,
        1.3544340844876996,
        &[4.854138116209649, 2.014150717610272, 1.8624933321374453],
    ),
    (
        "three_pairs",
        "beamforming",
        8.730782165957367,
        3.57664505239947,
        1.3544340844876996,
        &[4.854138116209649, 2.014150717610272, 1.8624933321374453],
    ),
    (
        "ap_downlink",
        "nplus",
        10.055937769529839,
        3.523682051582399,
        1.0,
        &[10.055937769529839, 0.0, 0.0],
    ),
    (
        "ap_downlink",
        "dot11n",
        11.060547248468518,
        3.859218327175464,
        1.3859409675412937,
        &[6.397158632519172, 2.053180113843407, 2.6102085021059374],
    ),
    (
        "ap_downlink",
        "beamforming",
        10.806391744287485,
        3.6535080824839175,
        1.0,
        &[10.806391744287485, 0.0, 0.0],
    ),
];

fn golden_scenario(label: &str) -> Scenario {
    match label {
        "three_pairs" => Scenario::three_pairs(),
        "ap_downlink" => Scenario::ap_downlink(),
        other => panic!("unknown golden scenario {other}"),
    }
}

/// Selecting the paper's environment — explicitly by value, by registry
/// name, or not at all (the default) — reproduces the pre-environment
/// sweep statistics bit-for-bit, serially and at 2 worker threads.
#[test]
fn sigcomm11_sweep_statistics_survive_the_environment_redesign_bitwise() {
    let protocols = [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming];
    for label in ["three_pairs", "ap_downlink"] {
        let expected: Vec<_> = SWEEP_GOLDENS.iter().filter(|g| g.0 == label).collect();
        let variants: [(&str, SweepSpec); 4] = [
            (
                "default env, serial",
                SweepSpec::new(golden_scenario(label))
                    .rounds(6)
                    .seed_count(4)
                    .protocols(&protocols),
            ),
            (
                "explicit value, serial",
                SweepSpec::new(golden_scenario(label))
                    .rounds(6)
                    .seed_count(4)
                    .protocols(&protocols)
                    .environment(Sigcomm11Indoor::default()),
            ),
            (
                "registry name, serial",
                SweepSpec::new(golden_scenario(label))
                    .rounds(6)
                    .seed_count(4)
                    .protocols(&protocols)
                    .environment_named("sigcomm11")
                    .expect("builtin"),
            ),
            (
                "registry name, 2 threads",
                SweepSpec::new(golden_scenario(label))
                    .rounds(6)
                    .seed_count(4)
                    .protocols(&protocols)
                    .environment_named("sigcomm11")
                    .expect("builtin")
                    .threads(2),
            ),
        ];
        for (context, spec) in &variants {
            let stats = spec.run();
            assert_eq!(stats.len(), expected.len(), "{label} ({context})");
            for (s, g) in stats.iter().zip(&expected) {
                assert_eq!(s.policy, g.1, "{label} ({context})");
                assert_eq!(s.n_runs, 4, "{label} ({context})");
                assert_eq!(
                    s.mean_total_mbps, g.2,
                    "{label}/{} mean total drifted ({context})",
                    g.1
                );
                assert_eq!(
                    s.ci95_total_mbps, g.3,
                    "{label}/{} CI drifted ({context})",
                    g.1
                );
                assert_eq!(s.mean_dof, g.4, "{label}/{} DoF drifted ({context})", g.1);
                assert_eq!(
                    s.mean_per_flow_mbps.as_slice(),
                    g.5,
                    "{label}/{} per-flow drifted ({context})",
                    g.1
                );
            }
        }
    }
}

/// Every shipped environment is selectable by name and satisfies the
/// engine's two determinism contracts there: the channel cache is
/// invisible (on/off bit-identity) and `sweep_parallel` at 2 threads
/// equals the serial sweep exactly.
#[test]
fn every_environment_passes_cache_identity_and_parallel_determinism() {
    for name in BUILTIN_ENVIRONMENT_NAMES {
        let spec_with = |cache: bool, threads: usize| {
            let cfg = SimConfig {
                rounds: 4,
                cache_channels: cache,
                ..SimConfig::default()
            };
            SweepSpec::new(Scenario::three_pairs())
                .config(cfg)
                .environment_named(name)
                .expect("builtin environment")
                .seed_count(3)
                .protocols(&[Protocol::NPlus, Protocol::Dot11n])
                .threads(threads)
                .run()
        };
        let base = spec_with(true, 1);
        assert_eq!(base.len(), 2, "{name}");
        for s in &base {
            assert!(
                s.mean_total_mbps.is_finite() && s.mean_total_mbps > 0.0,
                "{name}/{} produced no goodput",
                s.policy
            );
        }
        for (context, other) in [
            ("cache off", spec_with(false, 1)),
            ("2 threads", spec_with(true, 2)),
        ] {
            for (a, b) in base.iter().zip(&other) {
                assert_eq!(a.policy, b.policy, "{name} ({context})");
                assert_eq!(
                    a.mean_total_mbps, b.mean_total_mbps,
                    "{name}/{} mean total ({context})",
                    a.policy
                );
                assert_eq!(
                    a.ci95_total_mbps, b.ci95_total_mbps,
                    "{name}/{} CI ({context})",
                    a.policy
                );
                assert_eq!(
                    a.mean_per_flow_mbps, b.mean_per_flow_mbps,
                    "{name}/{} per-flow ({context})",
                    a.policy
                );
                assert_eq!(
                    a.mean_dof, b.mean_dof,
                    "{name}/{} DoF ({context})",
                    a.policy
                );
                assert_eq!(
                    a.mean_fairness.to_bits(),
                    b.mean_fairness.to_bits(),
                    "{name}/{} fairness ({context})",
                    a.policy
                );
            }
        }
    }
}

/// The environments genuinely differ: same scenario, same seeds, four
/// distinct worlds (no two environments share a mean total).
#[test]
fn shipped_environments_are_distinct_worlds() {
    let mut totals: Vec<(String, f64)> = Vec::new();
    for name in BUILTIN_ENVIRONMENT_NAMES {
        let stats = SweepSpec::new(Scenario::three_pairs())
            .rounds(8)
            .seed_count(3)
            .protocol(Protocol::NPlus)
            .environment_named(name)
            .expect("builtin environment")
            .run();
        totals.push((name.to_string(), stats[0].mean_total_mbps));
    }
    for i in 0..totals.len() {
        for j in (i + 1)..totals.len() {
            assert_ne!(
                totals[i].1, totals[j].1,
                "{} and {} drew identical worlds",
                totals[i].0, totals[j].0
            );
        }
    }
}

/// `build_scenario_in` (the testkit's environment-aware builder) draws
/// through the same hooks as the engine: in the paper's world it
/// reproduces `build_scenario` exactly, in every other world it builds
/// a placeable topology, and an outsized scenario surfaces
/// `TooManyNodes` instead of panicking.
#[test]
fn build_scenario_in_matches_build_scenario_and_reports_oversize() {
    use nplus_testkit::scenario::{build_scenario, build_scenario_in};

    for seed in [3u64, 17] {
        let classic = build_scenario(Scenario::three_pairs(), seed);
        let via_env = build_scenario_in(&SIGCOMM11_INDOOR, Scenario::three_pairs(), seed)
            .expect("three_pairs fits the indoor map");
        assert_eq!(
            classic.topology.placements.len(),
            via_env.topology.placements.len()
        );
        for (a, b) in classic
            .topology
            .placements
            .iter()
            .zip(&via_env.topology.placements)
        {
            assert_eq!(a.pos.x, b.pos.x, "seed {seed}: placement diverged");
            assert_eq!(a.pos.y, b.pos.y, "seed {seed}: placement diverged");
        }
    }

    for name in BUILTIN_ENVIRONMENT_NAMES {
        let env = environment_from_name(name).expect("builtin environment");
        let built = build_scenario_in(env, Scenario::ap_downlink(), 9)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(built.topology.nodes.len(), built.scenario.antennas.len());

        let oversized = Scenario {
            antennas: vec![1; env.capacity() + 1],
            flows: vec![],
        };
        let err = build_scenario_in(env, oversized, 9).unwrap_err();
        assert!(
            matches!(
                err,
                EnvironmentError::TooManyNodes { requested, .. } if requested == env.capacity() + 1
            ),
            "{name}: unexpected error {err}"
        );
    }
}
